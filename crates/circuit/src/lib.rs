#![warn(missing_docs)]

//! Quantum circuit intermediate representation for the qfab workspace.
//!
//! The IR is deliberately flat and simple: a [`Circuit`] is a qubit count
//! plus an ordered list of [`Gate`]s. Everything downstream — the
//! transpiler, the state-vector simulator, the noise-model trajectory
//! sampler — walks that list. There is no implicit qubit mapping or
//! connectivity: like the paper, we assume an idealized all-to-all
//! layout.
//!
//! Modules:
//!
//! * [`gate`] — the gate set (1q Cliffords + rotations, CX/CZ/CP/CH/SWAP,
//!   CCX/CCP/CSWAP) with exact matrices, inverses and metadata.
//! * [`circuit`] — the circuit container and builder API, plus structural
//!   transforms: inversion and adding a control to every gate (the
//!   paper's cQFT/cadd construction).
//! * [`register`] — named, contiguous qubit registers and a tiny layout
//!   allocator, so arithmetic circuits can talk about "the x register"
//!   rather than raw indices.
//! * [`stats`] — gate counting (the paper's Table I quantities) and
//!   critical-path depth.
//! * [`qasm`] — OpenQASM 2.0 export for interchange with other stacks.
//! * [`diagram`] — a compact text rendering for examples and debugging.

pub mod circuit;
pub mod diagram;
pub mod gate;
pub mod qasm;
pub mod qasm_parse;
pub mod register;
pub mod stats;

pub use circuit::Circuit;
pub use gate::{Gate, GateMatrix};
pub use register::{Layout, Register};
pub use stats::GateCounts;
