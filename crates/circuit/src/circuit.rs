//! The circuit container and its structural transforms.

use crate::gate::Gate;
use crate::stats::GateCounts;
use std::fmt;

/// A flat quantum circuit: a qubit count and an ordered gate list.
///
/// Builder methods return `&mut Self` so construction chains:
///
/// ```
/// use qfab_circuit::Circuit;
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).cphase(std::f64::consts::PI / 4.0, 1, 2);
/// assert_eq!(c.len(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Circuit {
    num_qubits: u32,
    gates: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Self {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// An empty circuit with gate-list capacity reserved up front.
    pub fn with_capacity(num_qubits: u32, capacity: usize) -> Self {
        Self {
            num_qubits,
            gates: Vec::with_capacity(capacity),
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The gate list.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends one gate, validating its qubit indices.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        let q = gate.qubits();
        let ops = q.as_slice();
        for &qubit in ops {
            assert!(
                qubit < self.num_qubits,
                "gate {gate} uses qubit {qubit} but circuit has {} qubits",
                self.num_qubits
            );
        }
        // Operands must be distinct (a gate can't use a qubit twice).
        for i in 0..ops.len() {
            for j in (i + 1)..ops.len() {
                assert!(ops[i] != ops[j], "gate {gate} repeats qubit {}", ops[i]);
            }
        }
        self.gates.push(gate);
        self
    }

    /// Appends every gate of `other` (qubit indices must already fit).
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot extend a {}-qubit circuit with a {}-qubit circuit",
            self.num_qubits,
            other.num_qubits
        );
        self.gates.extend_from_slice(&other.gates);
        self
    }

    /// Appends `other` with its qubit `i` mapped to `placement[i]`.
    pub fn extend_mapped(&mut self, other: &Circuit, placement: &[u32]) -> &mut Self {
        assert_eq!(
            placement.len(),
            other.num_qubits as usize,
            "placement must cover every qubit of the sub-circuit"
        );
        for gate in &other.gates {
            self.push(gate.map_qubits(|q| placement[q as usize]));
        }
        self
    }

    /// The inverse circuit: gates reversed, each inverted.
    pub fn inverse(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            gates: self.gates.iter().rev().map(Gate::inverse).collect(),
        }
    }

    /// Lifts every gate to its controlled version on `control` — the
    /// construction used for the paper's cQFT / cadd / cQFA.
    ///
    /// Returns `None` if any gate cannot be controlled within the gate
    /// set. The control qubit must not appear in the circuit.
    pub fn controlled_by(&self, control: u32) -> Option<Circuit> {
        assert!(control < self.num_qubits, "control qubit out of range");
        let mut out = Circuit::with_capacity(self.num_qubits, self.gates.len());
        for gate in &self.gates {
            assert!(
                !gate.qubits().as_slice().contains(&control),
                "control qubit {control} already used by {gate}"
            );
            out.gates.push(gate.controlled(control)?);
        }
        Some(out)
    }

    /// Gate-count statistics (1q/2q/3q split — the paper's Table I
    /// quantities after transpilation).
    pub fn counts(&self) -> GateCounts {
        GateCounts::of(self)
    }

    /// Critical-path depth: the longest chain of gates that share qubits.
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.num_qubits as usize];
        let mut depth = 0usize;
        for gate in &self.gates {
            let level = gate
                .qubits()
                .as_slice()
                .iter()
                .map(|&q| frontier[q as usize])
                .max()
                .unwrap_or(0)
                + 1;
            for &q in gate.qubits().as_slice() {
                frontier[q as usize] = level;
            }
            depth = depth.max(level);
        }
        depth
    }

    // ---- builder shorthands ------------------------------------------

    /// Identity on `q`.
    pub fn id(&mut self, q: u32) -> &mut Self {
        self.push(Gate::I(q))
    }
    /// Pauli X on `q`.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.push(Gate::X(q))
    }
    /// Pauli Y on `q`.
    pub fn y(&mut self, q: u32) -> &mut Self {
        self.push(Gate::Y(q))
    }
    /// Pauli Z on `q`.
    pub fn z(&mut self, q: u32) -> &mut Self {
        self.push(Gate::Z(q))
    }
    /// Hadamard on `q`.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.push(Gate::H(q))
    }
    /// S gate on `q`.
    pub fn s(&mut self, q: u32) -> &mut Self {
        self.push(Gate::S(q))
    }
    /// T gate on `q`.
    pub fn t(&mut self, q: u32) -> &mut Self {
        self.push(Gate::T(q))
    }
    /// √X on `q`.
    pub fn sx(&mut self, q: u32) -> &mut Self {
        self.push(Gate::Sx(q))
    }
    /// Z-rotation by `theta` on `q`.
    pub fn rz(&mut self, theta: f64, q: u32) -> &mut Self {
        self.push(Gate::Rz(q, theta))
    }
    /// X-rotation by `theta` on `q`.
    pub fn rx(&mut self, theta: f64, q: u32) -> &mut Self {
        self.push(Gate::Rx(q, theta))
    }
    /// Y-rotation by `theta` on `q`.
    pub fn ry(&mut self, theta: f64, q: u32) -> &mut Self {
        self.push(Gate::Ry(q, theta))
    }
    /// Phase gate diag(1, e^{iθ}) on `q`.
    pub fn phase(&mut self, theta: f64, q: u32) -> &mut Self {
        self.push(Gate::Phase(q, theta))
    }
    /// CNOT with the given control and target.
    pub fn cx(&mut self, control: u32, target: u32) -> &mut Self {
        self.push(Gate::Cx { control, target })
    }
    /// Controlled-Z.
    pub fn cz(&mut self, a: u32, b: u32) -> &mut Self {
        self.push(Gate::Cz(a, b))
    }
    /// Controlled-phase by `theta`.
    pub fn cphase(&mut self, theta: f64, control: u32, target: u32) -> &mut Self {
        self.push(Gate::Cphase {
            control,
            target,
            theta,
        })
    }
    /// Controlled-Hadamard.
    pub fn ch(&mut self, control: u32, target: u32) -> &mut Self {
        self.push(Gate::Ch { control, target })
    }
    /// SWAP.
    pub fn swap(&mut self, a: u32, b: u32) -> &mut Self {
        self.push(Gate::Swap(a, b))
    }
    /// Toffoli.
    pub fn ccx(&mut self, c0: u32, c1: u32, target: u32) -> &mut Self {
        self.push(Gate::Ccx { c0, c1, target })
    }
    /// Doubly-controlled phase by `theta` (the paper's `cR_l`).
    pub fn ccphase(&mut self, theta: f64, c0: u32, c1: u32, target: u32) -> &mut Self {
        self.push(Gate::Ccphase {
            c0,
            c1,
            target,
            theta,
        })
    }
    /// Fredkin (controlled swap).
    pub fn cswap(&mut self, control: u32, a: u32, b: u32) -> &mut Self {
        self.push(Gate::Cswap { control, a, b })
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit: {} qubits, {} gates, depth {}",
            self.num_qubits,
            self.gates.len(),
            self.depth()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn builder_chains_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccphase(PI / 4.0, 0, 1, 2).rz(0.5, 2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.num_qubits(), 3);
        let counts = c.counts();
        assert_eq!(counts.one_qubit, 2);
        assert_eq!(counts.two_qubit, 1);
        assert_eq!(counts.three_qubit, 1);
    }

    #[test]
    #[should_panic(expected = "uses qubit 3")]
    fn rejects_out_of_range_qubit() {
        Circuit::new(3).cx(0, 3);
    }

    #[test]
    #[should_panic(expected = "repeats qubit")]
    fn rejects_duplicate_operands() {
        Circuit::new(3).cx(1, 1);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).cphase(0.7, 0, 1);
        let inv = c.inverse();
        assert_eq!(inv.len(), 3);
        assert_eq!(
            inv.gates()[0],
            Gate::Cphase {
                control: 0,
                target: 1,
                theta: -0.7
            }
        );
        assert_eq!(inv.gates()[1], Gate::Sdg(1));
        assert_eq!(inv.gates()[2], Gate::H(0));
        // Involution.
        assert_eq!(inv.inverse(), c);
    }

    #[test]
    fn depth_tracks_critical_path() {
        let mut c = Circuit::new(3);
        assert_eq!(c.depth(), 0);
        c.h(0).h(1).h(2); // parallel layer
        assert_eq!(c.depth(), 1);
        c.cx(0, 1); // joins 0 and 1
        assert_eq!(c.depth(), 2);
        c.h(2); // still parallel with everything above
        assert_eq!(c.depth(), 2);
        c.cx(1, 2); // chains after cx(0,1) and h(2)
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn extend_and_extend_mapped() {
        let mut inner = Circuit::new(2);
        inner.h(0).cx(0, 1);
        let mut outer = Circuit::new(5);
        outer.extend(&inner);
        assert_eq!(
            outer.gates()[1],
            Gate::Cx {
                control: 0,
                target: 1
            }
        );
        let mut shifted = Circuit::new(5);
        shifted.extend_mapped(&inner, &[3, 4]);
        assert_eq!(shifted.gates()[0], Gate::H(3));
        assert_eq!(
            shifted.gates()[1],
            Gate::Cx {
                control: 3,
                target: 4
            }
        );
    }

    #[test]
    #[should_panic(expected = "placement must cover")]
    fn extend_mapped_requires_full_placement() {
        let mut inner = Circuit::new(2);
        inner.h(0);
        Circuit::new(5).extend_mapped(&inner, &[3]);
    }

    #[test]
    fn controlled_by_lifts_every_gate() {
        let mut c = Circuit::new(3);
        c.h(1).cphase(0.5, 1, 2).x(2);
        let controlled = c.controlled_by(0).expect("all controllable");
        assert_eq!(
            controlled.gates()[0],
            Gate::Ch {
                control: 0,
                target: 1
            }
        );
        assert_eq!(
            controlled.gates()[1],
            Gate::Ccphase {
                c0: 0,
                c1: 1,
                target: 2,
                theta: 0.5
            }
        );
        assert_eq!(
            controlled.gates()[2],
            Gate::Cx {
                control: 0,
                target: 2
            }
        );
    }

    #[test]
    fn controlled_by_fails_on_uncontrollable() {
        let mut c = Circuit::new(2);
        c.ry(0.3, 1);
        assert!(c.controlled_by(0).is_none());
    }

    #[test]
    #[should_panic(expected = "already used")]
    fn controlled_by_rejects_overlapping_control() {
        let mut c = Circuit::new(2);
        c.h(0);
        let _ = c.controlled_by(0);
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = format!("{c}");
        assert!(s.contains("2 qubits"));
        assert!(s.contains("h q0"));
        assert!(s.contains("cx q0,q1"));
    }
}
