//! Gate-count statistics.
//!
//! The paper's Table I reports 1q and 2q gate counts of the transpiled
//! arithmetic circuits; [`GateCounts`] computes those (plus a 3q bucket
//! for pre-transpilation circuits and per-mnemonic tallies).

use crate::circuit::Circuit;
use std::collections::BTreeMap;
use std::fmt;

/// Gate totals bucketed by arity, plus a per-mnemonic breakdown.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GateCounts {
    /// Number of 1-qubit gates.
    pub one_qubit: usize,
    /// Number of 2-qubit gates.
    pub two_qubit: usize,
    /// Number of 3-qubit gates (zero after transpilation).
    pub three_qubit: usize,
    /// Count per gate mnemonic (`"h"`, `"cx"`, …), sorted by name.
    pub by_name: BTreeMap<&'static str, usize>,
}

impl GateCounts {
    /// Counts the gates of a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let mut out = GateCounts::default();
        for gate in circuit.gates() {
            match gate.arity() {
                1 => out.one_qubit += 1,
                2 => out.two_qubit += 1,
                3 => out.three_qubit += 1,
                _ => unreachable!("gate arity is always 1..=3"),
            }
            *out.by_name.entry(gate.name()).or_insert(0) += 1;
        }
        out
    }

    /// Total gates of any arity.
    pub fn total(&self) -> usize {
        self.one_qubit + self.two_qubit + self.three_qubit
    }

    /// Count of a specific mnemonic.
    pub fn named(&self, name: &str) -> usize {
        self.by_name.get(name).copied().unwrap_or(0)
    }
}

impl fmt::Display for GateCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "1q: {}, 2q: {}, 3q: {} (total {})",
            self.one_qubit,
            self.two_qubit,
            self.three_qubit,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_arity_and_name() {
        let mut c = Circuit::new(3);
        c.h(0)
            .h(1)
            .cx(0, 1)
            .ccphase(0.1, 0, 1, 2)
            .rz(0.2, 2)
            .cphase(0.3, 1, 2);
        let counts = c.counts();
        assert_eq!(counts.one_qubit, 3);
        assert_eq!(counts.two_qubit, 2);
        assert_eq!(counts.three_qubit, 1);
        assert_eq!(counts.total(), 6);
        assert_eq!(counts.named("h"), 2);
        assert_eq!(counts.named("cx"), 1);
        assert_eq!(counts.named("ccp"), 1);
        assert_eq!(counts.named("nonexistent"), 0);
    }

    #[test]
    fn empty_circuit_counts() {
        let counts = Circuit::new(4).counts();
        assert_eq!(counts.total(), 0);
        assert_eq!(counts, GateCounts::default());
    }

    #[test]
    fn display_mentions_buckets() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = format!("{}", c.counts());
        assert!(s.contains("1q: 1"));
        assert!(s.contains("2q: 1"));
    }
}
