//! OpenQASM 2.0 export.
//!
//! Emits a `qelib1.inc`-compatible program so circuits can be checked
//! against other toolchains (e.g. the paper's Qiskit stack). Gates
//! without a qelib1 primitive (`ccp`, `cswap` is `cswap` in qelib1,
//! `ccp` is decomposed) are lowered to supported forms inline.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::fmt::Write as _;

/// Renders the circuit as an OpenQASM 2.0 program over one register `q`.
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for gate in circuit.gates() {
        emit(&mut out, gate);
    }
    out
}

fn emit(out: &mut String, gate: &Gate) {
    use Gate::*;
    match *gate {
        I(q) => ln(out, format_args!("id q[{q}];")),
        X(q) => ln(out, format_args!("x q[{q}];")),
        Y(q) => ln(out, format_args!("y q[{q}];")),
        Z(q) => ln(out, format_args!("z q[{q}];")),
        H(q) => ln(out, format_args!("h q[{q}];")),
        S(q) => ln(out, format_args!("s q[{q}];")),
        Sdg(q) => ln(out, format_args!("sdg q[{q}];")),
        T(q) => ln(out, format_args!("t q[{q}];")),
        Tdg(q) => ln(out, format_args!("tdg q[{q}];")),
        Sx(q) => ln(out, format_args!("sx q[{q}];")),
        Sxdg(q) => ln(out, format_args!("sxdg q[{q}];")),
        Rx(q, t) => ln(out, format_args!("rx({t}) q[{q}];")),
        Ry(q, t) => ln(out, format_args!("ry({t}) q[{q}];")),
        Rz(q, t) => ln(out, format_args!("rz({t}) q[{q}];")),
        Phase(q, t) => ln(out, format_args!("u1({t}) q[{q}];")),
        U(q, a, b, c) => ln(out, format_args!("u3({a},{b},{c}) q[{q}];")),
        Cx { control, target } => ln(out, format_args!("cx q[{control}],q[{target}];")),
        Cz(a, b) => ln(out, format_args!("cz q[{a}],q[{b}];")),
        Cphase {
            control,
            target,
            theta,
        } => ln(out, format_args!("cu1({theta}) q[{control}],q[{target}];")),
        Ch { control, target } => ln(out, format_args!("ch q[{control}],q[{target}];")),
        Swap(a, b) => ln(out, format_args!("swap q[{a}],q[{b}];")),
        Ccx { c0, c1, target } => ln(out, format_args!("ccx q[{c0}],q[{c1}],q[{target}];")),
        Ccphase {
            c0,
            c1,
            target,
            theta,
        } => {
            // qelib1 has no ccp primitive; standard decomposition into
            // three cu1(θ/2) and two cx, exactly unitary-equivalent.
            let half = theta / 2.0;
            ln(out, format_args!("cu1({half}) q[{c1}],q[{target}];"));
            ln(out, format_args!("cx q[{c0}],q[{c1}];"));
            ln(out, format_args!("cu1({}) q[{c1}],q[{target}];", -half));
            ln(out, format_args!("cx q[{c0}],q[{c1}];"));
            ln(out, format_args!("cu1({half}) q[{c0}],q[{target}];"));
        }
        Cswap { control, a, b } => ln(out, format_args!("cswap q[{control}],q[{a}],q[{b}];")),
    }
}

fn ln(out: &mut String, args: std::fmt::Arguments<'_>) {
    let _ = writeln!(out, "{args}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_register() {
        let c = Circuit::new(5);
        let q = to_qasm(&c);
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("include \"qelib1.inc\";"));
        assert!(q.contains("qreg q[5];"));
    }

    #[test]
    fn basic_gates_render() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cphase(0.5, 1, 2).rz(-0.25, 2);
        let q = to_qasm(&c);
        assert!(q.contains("h q[0];"));
        assert!(q.contains("cx q[0],q[1];"));
        assert!(q.contains("cu1(0.5) q[1],q[2];"));
        assert!(q.contains("rz(-0.25) q[2];"));
    }

    #[test]
    fn ccphase_lowers_to_five_gates() {
        let mut c = Circuit::new(3);
        c.ccphase(1.0, 0, 1, 2);
        let q = to_qasm(&c);
        let cu1_count = q.matches("cu1(").count();
        let cx_count = q.matches("cx ").count();
        assert_eq!(cu1_count, 3);
        assert_eq!(cx_count, 2);
        assert!(q.contains("cu1(0.5)"));
        assert!(q.contains("cu1(-0.5)"));
    }

    #[test]
    fn every_gate_kind_emits_something() {
        let mut c = Circuit::new(3);
        c.id(0)
            .x(0)
            .y(0)
            .z(0)
            .h(0)
            .s(0)
            .t(0)
            .sx(0)
            .rx(0.1, 0)
            .ry(0.2, 0)
            .rz(0.3, 0)
            .phase(0.4, 0)
            .cx(0, 1)
            .cz(0, 1)
            .ch(0, 1)
            .swap(0, 1)
            .ccx(0, 1, 2)
            .cswap(0, 1, 2);
        c.push(Gate::U(0, 0.1, 0.2, 0.3));
        c.push(Gate::Sdg(0));
        c.push(Gate::Tdg(0));
        c.push(Gate::Sxdg(0));
        let q = to_qasm(&c);
        // 3 header lines + one line per gate (none of these lower to
        // multiple lines).
        assert_eq!(q.lines().count(), 3 + c.len());
        assert!(q.contains("u3(0.1,0.2,0.3) q[0];"));
        assert!(q.contains("cswap q[0],q[1],q[2];"));
    }
}
