//! Compact text diagrams for debugging and examples.
//!
//! Renders a circuit as one line per qubit with gates placed left to
//! right in depth order (gates that can share a time step are drawn in
//! the same column). Controls are `●`, targets show the gate mnemonic,
//! and vertical connectivity is implied by the shared column.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Renders the circuit as a multi-line text diagram.
pub fn render(circuit: &Circuit) -> String {
    let n = circuit.num_qubits() as usize;
    if n == 0 {
        return String::new();
    }
    // Assign each gate a column: earliest level after all its operands.
    let mut frontier = vec![0usize; n];
    let mut columns: Vec<Vec<(usize, String)>> = Vec::new(); // col -> (qubit, label)
    for gate in circuit.gates() {
        let col = gate
            .qubits()
            .as_slice()
            .iter()
            .map(|&q| frontier[q as usize])
            .max()
            .unwrap_or(0);
        if col == columns.len() {
            columns.push(Vec::new());
        }
        for &q in gate.qubits().as_slice() {
            frontier[q as usize] = col + 1;
        }
        place(&mut columns[col], gate);
    }

    // Column widths = widest label in the column.
    let widths: Vec<usize> = columns
        .iter()
        .map(|c| c.iter().map(|(_, l)| l.chars().count()).max().unwrap_or(1))
        .collect();

    let mut lines = vec![String::new(); n];
    for (q, line) in lines.iter_mut().enumerate() {
        line.push_str(&format!("q{q:<3}: "));
    }
    for (col, cells) in columns.iter().enumerate() {
        let w = widths[col];
        for (q, line) in lines.iter_mut().enumerate() {
            let label = cells
                .iter()
                .find(|(qubit, _)| *qubit == q)
                .map(|(_, l)| l.clone())
                .unwrap_or_else(|| "─".repeat(w));
            let pad = w - label.chars().count();
            line.push('─');
            line.push_str(&label);
            line.push_str(&"─".repeat(pad + 1));
        }
    }
    lines.join("\n")
}

fn place(cells: &mut Vec<(usize, String)>, gate: &Gate) {
    let qubits = gate.qubits();
    let ops = qubits.as_slice();
    let label = match gate.angle() {
        Some(t) => format!("{}({:.3})", gate.name(), t),
        None => gate.name().to_string(),
    };
    match *gate {
        Gate::Cx { control, target }
        | Gate::Cphase {
            control, target, ..
        }
        | Gate::Ch { control, target } => {
            cells.push((control as usize, "●".to_string()));
            cells.push((target as usize, label));
        }
        Gate::Ccx { c0, c1, target } | Gate::Ccphase { c0, c1, target, .. } => {
            cells.push((c0 as usize, "●".to_string()));
            cells.push((c1 as usize, "●".to_string()));
            cells.push((target as usize, label));
        }
        Gate::Cswap { control, a, b } => {
            cells.push((control as usize, "●".to_string()));
            cells.push((a as usize, "×".to_string()));
            cells.push((b as usize, "×".to_string()));
        }
        Gate::Swap(a, b) => {
            cells.push((a as usize, "×".to_string()));
            cells.push((b as usize, "×".to_string()));
        }
        Gate::Cz(a, b) => {
            cells.push((a as usize, "●".to_string()));
            cells.push((b as usize, "●".to_string()));
        }
        _ => {
            cells.push((ops[0] as usize, label));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_one_line_per_qubit() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cphase(0.5, 1, 2);
        let d = render(&c);
        assert_eq!(d.lines().count(), 3);
        assert!(d.contains("q0"));
        assert!(d.contains("h"));
        assert!(d.contains("●"));
        assert!(d.contains("cp(0.500)"));
    }

    #[test]
    fn empty_circuit_renders_prefixes() {
        let d = render(&Circuit::new(2));
        assert_eq!(d.lines().count(), 2);
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let d = render(&c);
        let lines: Vec<&str> = d.lines().collect();
        // Both h's land in the same column, so line lengths match.
        assert_eq!(lines[0].chars().count(), lines[1].chars().count());
    }

    #[test]
    fn swap_uses_cross_markers() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let d = render(&c);
        assert_eq!(d.matches('×').count(), 2);
    }
}
