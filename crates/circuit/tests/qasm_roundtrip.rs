//! Property test: QASM export → import round-trips for arbitrary
//! circuits over the directly exported gate set.

use proptest::prelude::*;
use qfab_circuit::qasm::to_qasm;
use qfab_circuit::qasm_parse::from_qasm;
use qfab_circuit::{Circuit, Gate};

fn arb_gate(qubits: u32) -> impl Strategy<Value = Option<Gate>> {
    (0u8..14, 0..qubits, 0..qubits, 0..qubits, -3.0f64..3.0).prop_map(
        move |(kind, a, b, t, angle)| match kind {
            0 => Some(Gate::H(a)),
            1 => Some(Gate::X(a)),
            2 => Some(Gate::Y(a)),
            3 => Some(Gate::Z(a)),
            4 => Some(Gate::S(a)),
            5 => Some(Gate::Tdg(a)),
            6 => Some(Gate::Sx(a)),
            7 => Some(Gate::Rz(a, angle)),
            8 => Some(Gate::Phase(a, angle)),
            9 => Some(Gate::U(a, angle, angle / 2.0, -angle)),
            10 if a != b => Some(Gate::Cx {
                control: a,
                target: b,
            }),
            11 if a != b => Some(Gate::Cphase {
                control: a,
                target: b,
                theta: angle,
            }),
            12 if a != b => Some(Gate::Swap(a, b)),
            13 if a != b && b != t && a != t => Some(Gate::Ccx {
                c0: a,
                c1: b,
                target: t,
            }),
            _ => None,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qasm_roundtrip(gates in prop::collection::vec(arb_gate(5), 0..24)) {
        let mut c = Circuit::new(5);
        for g in gates.into_iter().flatten() {
            c.push(g);
        }
        let text = to_qasm(&c);
        let parsed = from_qasm(&text).expect("exporter output must parse");
        prop_assert_eq!(parsed.num_qubits(), c.num_qubits());
        prop_assert_eq!(parsed.gates().len(), c.gates().len());
        for (a, b) in c.gates().iter().zip(parsed.gates()) {
            match (a, b) {
                // Angles survive the decimal formatting to high precision.
                (x, y) if x == y => {}
                (x, y) => {
                    prop_assert_eq!(x.name(), y.name());
                    prop_assert_eq!(x.qubits(), y.qubits());
                    let (Some(ta), Some(tb)) = (x.angle(), y.angle()) else {
                        return Err(TestCaseError::fail(format!("gates differ: {x} vs {y}")));
                    };
                    prop_assert!((ta - tb).abs() < 1e-9);
                }
            }
        }
    }
}
