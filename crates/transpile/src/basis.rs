//! Lowering to target gate bases.

use crate::euler::lower_1q_to_ibm;
use qfab_circuit::{Circuit, Gate};
use std::f64::consts::PI;

/// A transpilation target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Basis {
    /// CNOTs plus *atomic* single-qubit gates — the granularity of the
    /// paper's Table I counts and of its per-gate noise model.
    CxPlus1q,
    /// The IBM superconducting native set {Id, X, RZ, SX, CX}: like
    /// [`Basis::CxPlus1q`] but with every 1q gate Euler-decomposed.
    Ibm,
}

/// Transpiles a circuit to the target basis. The result is exactly
/// unitary-equivalent for [`Basis::CxPlus1q`] and equivalent up to
/// global phase for [`Basis::Ibm`].
pub fn transpile(circuit: &Circuit, basis: Basis) -> Circuit {
    let _span = qfab_telemetry::histogram("transpile.lower_ns").span();
    let trace_span = qfab_telemetry::trace::span_args(
        "transpile.lower",
        &[(
            "gates_in",
            qfab_telemetry::trace::ArgValue::U64(circuit.len() as u64),
        )],
    );
    let mut out = Circuit::with_capacity(circuit.num_qubits(), circuit.len() * 3);
    for gate in circuit.gates() {
        lower_gate(&mut out, gate, basis);
    }
    if qfab_telemetry::enabled() {
        qfab_telemetry::counter("transpile.lower.calls").incr();
        qfab_telemetry::counter("transpile.lower.gates_in").add(circuit.len() as u64);
        qfab_telemetry::counter("transpile.lower.gates_out").add(out.len() as u64);
    }
    trace_span.end_with_args(&[(
        "gates_out",
        qfab_telemetry::trace::ArgValue::U64(out.len() as u64),
    )]);
    out
}

fn lower_gate(out: &mut Circuit, gate: &Gate, basis: Basis) {
    use Gate::*;
    match *gate {
        // 1q gates.
        ref g if g.arity() == 1 => match basis {
            Basis::CxPlus1q => {
                out.push(*g);
            }
            Basis::Ibm => {
                for e in lower_1q_to_ibm(g) {
                    out.push(e);
                }
            }
        },
        Cx { .. } => {
            out.push(*gate);
        }
        // CP(θ) = P(θ/2)c · CX · P(−θ/2)t · CX · P(θ/2)t  (3×1q + 2×CX,
        // exactly equal — this is the Qiskit cu1 rule the paper's Table I
        // counts follow).
        Cphase {
            control,
            target,
            theta,
        } => {
            let half = theta / 2.0;
            lower_gate(out, &Phase(control, half), basis);
            out.push(Cx { control, target });
            lower_gate(out, &Phase(target, -half), basis);
            out.push(Cx { control, target });
            lower_gate(out, &Phase(target, half), basis);
        }
        // CZ = CP(π).
        Cz(a, b) => {
            lower_gate(
                out,
                &Cphase {
                    control: a,
                    target: b,
                    theta: PI,
                },
                basis,
            );
        }
        // CH = (S·H·T)t · CX · (T†·H·S†)t, the Qiskit qelib1 rule
        // (6×1q + 1×CX, exact including phase).
        Ch { control, target } => {
            lower_gate(out, &S(target), basis);
            lower_gate(out, &H(target), basis);
            lower_gate(out, &T(target), basis);
            out.push(Cx { control, target });
            lower_gate(out, &Tdg(target), basis);
            lower_gate(out, &H(target), basis);
            lower_gate(out, &Sdg(target), basis);
        }
        // SWAP = 3 CX.
        Swap(a, b) => {
            out.push(Cx {
                control: a,
                target: b,
            });
            out.push(Cx {
                control: b,
                target: a,
            });
            out.push(Cx {
                control: a,
                target: b,
            });
        }
        // CCP(θ) = CP(θ/2)(c1,t) · CX(c0,c1) · CP(−θ/2)(c1,t)
        //        · CX(c0,c1) · CP(θ/2)(c0,t), CPs expanded
        // (9×1q + 8×CX total — the Table I cost of the paper's cR_l).
        Ccphase {
            c0,
            c1,
            target,
            theta,
        } => {
            let half = theta / 2.0;
            lower_gate(
                out,
                &Cphase {
                    control: c1,
                    target,
                    theta: half,
                },
                basis,
            );
            out.push(Cx {
                control: c0,
                target: c1,
            });
            lower_gate(
                out,
                &Cphase {
                    control: c1,
                    target,
                    theta: -half,
                },
                basis,
            );
            out.push(Cx {
                control: c0,
                target: c1,
            });
            lower_gate(
                out,
                &Cphase {
                    control: c0,
                    target,
                    theta: half,
                },
                basis,
            );
        }
        // Standard Toffoli: 6 CX + H/T ladder (9×1q + 6×CX, exact).
        Ccx { c0, c1, target } => {
            lower_gate(out, &H(target), basis);
            out.push(Cx {
                control: c1,
                target,
            });
            lower_gate(out, &Tdg(target), basis);
            out.push(Cx {
                control: c0,
                target,
            });
            lower_gate(out, &T(target), basis);
            out.push(Cx {
                control: c1,
                target,
            });
            lower_gate(out, &Tdg(target), basis);
            out.push(Cx {
                control: c0,
                target,
            });
            lower_gate(out, &T(c1), basis);
            lower_gate(out, &T(target), basis);
            lower_gate(out, &H(target), basis);
            out.push(Cx {
                control: c0,
                target: c1,
            });
            lower_gate(out, &T(c0), basis);
            lower_gate(out, &Tdg(c1), basis);
            out.push(Cx {
                control: c0,
                target: c1,
            });
        }
        // Fredkin via CX-conjugated Toffoli.
        Cswap { control, a, b } => {
            out.push(Cx {
                control: b,
                target: a,
            });
            lower_gate(
                out,
                &Ccx {
                    c0: control,
                    c1: a,
                    target: b,
                },
                basis,
            );
            out.push(Cx {
                control: b,
                target: a,
            });
        }
        ref g => unreachable!("unhandled gate in lowering: {g}"),
    }
}

/// True when every gate of `circuit` lies in `basis`.
pub fn in_basis(circuit: &Circuit, basis: Basis) -> bool {
    circuit.gates().iter().all(|g| match basis {
        Basis::CxPlus1q => g.arity() == 1 || matches!(g, Gate::Cx { .. }),
        Basis::Ibm => matches!(
            g,
            Gate::I(_) | Gate::X(_) | Gate::Sx(_) | Gate::Rz(..) | Gate::Cx { .. }
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::assert_equivalent_up_to_phase;

    fn paper_gates_circuit() -> Circuit {
        // One of each gate the arithmetic circuits actually use.
        let mut c = Circuit::new(4);
        c.h(0)
            .cphase(PI / 4.0, 0, 1)
            .ch(1, 2)
            .ccphase(PI / 8.0, 0, 1, 3)
            .x(2)
            .swap(1, 3)
            .cz(2, 3)
            .phase(0.3, 1);
        c
    }

    #[test]
    fn cx_plus_1q_lowering_is_equivalent() {
        let c = paper_gates_circuit();
        let t = transpile(&c, Basis::CxPlus1q);
        assert!(in_basis(&t, Basis::CxPlus1q));
        assert_equivalent_up_to_phase(&c, &t, 1e-9);
    }

    #[test]
    fn ibm_lowering_is_equivalent() {
        let c = paper_gates_circuit();
        let t = transpile(&c, Basis::Ibm);
        assert!(in_basis(&t, Basis::Ibm));
        assert_equivalent_up_to_phase(&c, &t, 1e-8);
    }

    #[test]
    fn cp_costs_three_1q_two_cx() {
        let mut c = Circuit::new(2);
        c.cphase(0.7, 0, 1);
        let t = transpile(&c, Basis::CxPlus1q);
        let counts = t.counts();
        assert_eq!(counts.one_qubit, 3);
        assert_eq!(counts.two_qubit, 2);
        assert_eq!(counts.named("cx"), 2);
    }

    #[test]
    fn ccp_costs_nine_1q_eight_cx() {
        let mut c = Circuit::new(3);
        c.ccphase(0.9, 0, 1, 2);
        let t = transpile(&c, Basis::CxPlus1q);
        let counts = t.counts();
        assert_eq!(counts.one_qubit, 9);
        assert_eq!(counts.two_qubit, 8);
    }

    #[test]
    fn ch_costs_six_1q_one_cx() {
        let mut c = Circuit::new(2);
        c.ch(0, 1);
        let t = transpile(&c, Basis::CxPlus1q);
        let counts = t.counts();
        assert_eq!(counts.one_qubit, 6);
        assert_eq!(counts.two_qubit, 1);
    }

    #[test]
    fn h_stays_atomic_in_cx_plus_1q() {
        let mut c = Circuit::new(1);
        c.h(0);
        let t = transpile(&c, Basis::CxPlus1q);
        assert_eq!(t.len(), 1);
        assert_eq!(t.gates()[0], Gate::H(0));
    }

    #[test]
    fn swap_is_three_cx() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let t = transpile(&c, Basis::CxPlus1q);
        assert_eq!(t.counts().named("cx"), 3);
        assert_eq!(t.len(), 3);
        assert_equivalent_up_to_phase(&c, &t, 1e-10);
    }

    #[test]
    fn toffoli_costs_match_standard() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let t = transpile(&c, Basis::CxPlus1q);
        let counts = t.counts();
        assert_eq!(counts.two_qubit, 6);
        assert_eq!(counts.one_qubit, 9);
        assert_equivalent_up_to_phase(&c, &t, 1e-9);
    }

    #[test]
    fn cswap_equivalent() {
        let mut c = Circuit::new(3);
        c.cswap(0, 1, 2);
        let t = transpile(&c, Basis::CxPlus1q);
        assert_equivalent_up_to_phase(&c, &t, 1e-9);
        assert_eq!(t.counts().two_qubit, 8);
    }

    #[test]
    fn transpile_is_idempotent_on_basis_circuits() {
        let c = paper_gates_circuit();
        let t = transpile(&c, Basis::CxPlus1q);
        let tt = transpile(&t, Basis::CxPlus1q);
        assert_eq!(t, tt);
    }

    #[test]
    fn ibm_transpile_of_cp_has_no_sx() {
        // CP lowers to phases + CX; phases are virtual RZs on IBM
        // hardware, so the IBM form should contain no SX at all.
        let mut c = Circuit::new(2);
        c.cphase(0.9, 0, 1);
        let t = transpile(&c, Basis::Ibm);
        assert!(in_basis(&t, Basis::Ibm));
        assert_eq!(t.counts().named("sx"), 0);
        assert_eq!(t.counts().named("rz"), 3);
        assert_eq!(t.counts().named("cx"), 2);
    }
}
