//! Euler-angle decomposition of single-qubit unitaries onto the IBM
//! native set {RZ, SX, X}.
//!
//! Any U ∈ U(2) factors (up to global phase) as
//! `U = e^{iα} · U3(θ, φ, λ)` with
//!
//! ```text
//! U3(θ,φ,λ) = [ cos(θ/2)            −e^{iλ}  sin(θ/2)      ]
//!             [ e^{iφ} sin(θ/2)      e^{i(φ+λ)} cos(θ/2)   ]
//! ```
//!
//! and `U3(θ,φ,λ) ≅ RZ(φ+π) · SX · RZ(θ+π) · SX · RZ(λ)` (the "ZSX"
//! form used by IBM backends, where RZ is a virtual frame change). The
//! emitter specializes the cheap cases: a diagonal U becomes a single
//! RZ, and a θ = π/2 rotation needs only one SX.

use qfab_circuit::gate::{Gate, GateMatrix};
use qfab_math::matrix::Mat2;
use std::f64::consts::PI;

/// Angle tolerance under which rotations are treated as exact multiples
/// (avoids emitting RZ(1e-17) noise gates).
const ANGLE_TOL: f64 = 1e-12;

/// The extracted U3 angles of a single-qubit unitary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZsxDecomposition {
    /// Polar rotation angle θ ∈ [0, π].
    pub theta: f64,
    /// Phase angle φ.
    pub phi: f64,
    /// Phase angle λ.
    pub lambda: f64,
}

impl ZsxDecomposition {
    /// Extracts U3 angles from a unitary matrix (global phase dropped).
    pub fn of(u: &Mat2) -> Self {
        let m00 = u.m[0][0];
        let m10 = u.m[1][0];
        let c = m00.norm().clamp(0.0, 1.0);
        let s = m10.norm().clamp(0.0, 1.0);
        let theta = 2.0 * s.atan2(c);
        if s <= ANGLE_TOL {
            // Diagonal: only φ+λ matters; put it all in λ.
            let lambda = (u.m[1][1] / m00).arg();
            return Self {
                theta: 0.0,
                phi: 0.0,
                lambda,
            };
        }
        if c <= ANGLE_TOL {
            // Anti-diagonal: only φ−(λ+π) matters... conventionally set
            // λ from −m01 and φ = arg ratio.
            let phi = (m10 / (-u.m[0][1])).arg();
            return Self {
                theta: PI,
                phi,
                lambda: 0.0,
            };
        }
        let alpha = m00.arg();
        let phi = m10.arg() - alpha;
        let lambda = (-u.m[0][1]).arg() - alpha;
        Self { theta, phi, lambda }
    }

    /// Emits the minimal RZ/SX/X sequence realizing this rotation on
    /// qubit `q` (up to global phase), in circuit order.
    pub fn emit(&self, q: u32) -> Vec<Gate> {
        let theta = self.theta;
        let mut out = Vec::with_capacity(5);
        if norm_angle(theta).abs() <= ANGLE_TOL {
            // Pure phase.
            push_rz(&mut out, q, self.phi + self.lambda);
            return out;
        }
        if (norm_angle(theta - PI)).abs() <= ANGLE_TOL {
            // θ = π: RZ(a)·X realizes U3(π,φ,λ) up to phase with
            // a = φ − λ + π (only φ−λ is physical at θ=π). One or two
            // native gates instead of the general form's four.
            out.push(Gate::X(q));
            push_rz(&mut out, q, self.phi - self.lambda + PI);
            return out;
        }
        if (norm_angle(theta - PI / 2.0)).abs() <= ANGLE_TOL {
            // One-SX form: U3(π/2, φ, λ) ≅ RZ(φ+π/2)·SX·RZ(λ−π/2).
            push_rz(&mut out, q, self.lambda - PI / 2.0);
            out.push(Gate::Sx(q));
            push_rz(&mut out, q, self.phi + PI / 2.0);
            return out;
        }
        // General two-SX form: RZ(φ+π)·SX·RZ(θ+π)·SX·RZ(λ).
        push_rz(&mut out, q, self.lambda);
        out.push(Gate::Sx(q));
        push_rz(&mut out, q, theta + PI);
        out.push(Gate::Sx(q));
        push_rz(&mut out, q, self.phi + PI);
        out
    }
}

/// Decomposes any single-qubit gate to the IBM native set, in circuit
/// order. Gates already in the set pass through unchanged; identities
/// produce an empty sequence.
pub fn lower_1q_to_ibm(gate: &Gate) -> Vec<Gate> {
    match *gate {
        Gate::I(_) => vec![],
        Gate::X(_) | Gate::Sx(_) | Gate::Rz(..) => vec![*gate],
        ref g => {
            let GateMatrix::One(m) = g.matrix() else {
                panic!("lower_1q_to_ibm called with multi-qubit gate {g}")
            };
            let q = g.qubits()[0];
            ZsxDecomposition::of(&m).emit(q)
        }
    }
}

fn push_rz(out: &mut Vec<Gate>, q: u32, angle: f64) {
    let a = norm_angle(angle);
    if a.abs() > ANGLE_TOL {
        out.push(Gate::Rz(q, a));
    }
}

/// Normalizes an angle into (−π, π].
fn norm_angle(a: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut x = a % two_pi;
    if x > PI {
        x -= two_pi;
    } else if x <= -PI {
        x += two_pi;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_math::complex::c64;
    use qfab_math::matrix::Mat2;

    fn matrix_of_sequence(gates: &[Gate]) -> Mat2 {
        let mut acc = Mat2::identity();
        for g in gates {
            let GateMatrix::One(m) = g.matrix() else {
                panic!("not 1q")
            };
            acc = m.matmul(&acc); // circuit order: later gates multiply on the left
        }
        acc
    }

    fn gate_matrix(g: &Gate) -> Mat2 {
        let GateMatrix::One(m) = g.matrix() else {
            panic!("not 1q")
        };
        m
    }

    fn check_roundtrip(g: Gate) {
        let seq = lower_1q_to_ibm(&g);
        let got = matrix_of_sequence(&seq);
        let want = gate_matrix(&g);
        assert!(
            got.approx_eq_up_to_phase(&want, 1e-9),
            "decomposition of {g} wrong: emitted {seq:?}"
        );
        // Everything emitted is in the native set.
        for e in &seq {
            assert!(
                matches!(e, Gate::X(_) | Gate::Sx(_) | Gate::Rz(..)),
                "{e} not in IBM basis"
            );
        }
    }

    #[test]
    fn standard_gates_roundtrip() {
        for g in [
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::Sx(0),
            Gate::Sxdg(0),
        ] {
            check_roundtrip(g);
        }
    }

    #[test]
    fn rotations_roundtrip() {
        for &t in &[0.0, 0.3, -1.2, PI / 2.0, PI, 2.7, -PI / 2.0, 3.0 * PI / 2.0] {
            check_roundtrip(Gate::Rx(0, t));
            check_roundtrip(Gate::Ry(0, t));
            check_roundtrip(Gate::Rz(0, t));
            check_roundtrip(Gate::Phase(0, t));
        }
    }

    #[test]
    fn generic_u_roundtrip() {
        for (i, &(a, b, c)) in [
            (0.3, 1.1, -0.4),
            (PI - 1e-3, 0.2, 0.9),
            (1e-3, -2.0, 2.0),
            (2.2, PI, -PI / 3.0),
        ]
        .iter()
        .enumerate()
        {
            check_roundtrip(Gate::U(0, a, b, c));
            let _ = i;
        }
    }

    #[test]
    fn identity_emits_nothing() {
        assert!(lower_1q_to_ibm(&Gate::I(3)).is_empty());
        // Phase(0) is an identity too.
        assert!(lower_1q_to_ibm(&Gate::Phase(0, 0.0)).is_empty());
        // Rz(2π) is a global phase = identity up to phase.
        let seq = lower_1q_to_ibm(&Gate::Phase(0, 2.0 * PI));
        assert!(seq.is_empty(), "got {seq:?}");
    }

    #[test]
    fn diagonal_gates_cost_one_rz() {
        for g in [Gate::Z(0), Gate::S(0), Gate::T(0), Gate::Phase(0, 0.77)] {
            let seq = lower_1q_to_ibm(&g);
            assert_eq!(seq.len(), 1, "{g}: {seq:?}");
            assert!(matches!(seq[0], Gate::Rz(..)));
        }
    }

    #[test]
    fn hadamard_costs_three_native_gates() {
        let seq = lower_1q_to_ibm(&Gate::H(0));
        // RZ · SX · RZ.
        assert_eq!(seq.len(), 3, "{seq:?}");
        assert!(matches!(seq[1], Gate::Sx(_)));
    }

    #[test]
    fn x_passes_through_native() {
        assert_eq!(lower_1q_to_ibm(&Gate::X(2)), vec![Gate::X(2)]);
        // Y differs from X by phases, needs more.
        assert!(!lower_1q_to_ibm(&Gate::Y(2)).is_empty());
        check_roundtrip(Gate::Y(2));
    }

    #[test]
    fn angle_extraction_matches_u3_definition() {
        let (theta, phi, lam) = (1.234, 0.567, -0.891);
        let GateMatrix::One(u) = Gate::U(0, theta, phi, lam).matrix() else {
            unreachable!()
        };
        let d = ZsxDecomposition::of(&u);
        assert!((d.theta - theta).abs() < 1e-10);
        assert!((norm_angle(d.phi - phi)).abs() < 1e-10);
        assert!((norm_angle(d.lambda - lam)).abs() < 1e-10);
    }

    #[test]
    fn random_unitaries_roundtrip() {
        // Random unitaries via U3 angles + extra global phase.
        let mut rng = qfab_math::rng::Xoshiro256StarStar::new(77);
        for _ in 0..200 {
            let theta = rng.next_f64() * PI;
            let phi = (rng.next_f64() - 0.5) * 4.0 * PI;
            let lam = (rng.next_f64() - 0.5) * 4.0 * PI;
            let alpha = rng.next_f64() * 2.0 * PI;
            let GateMatrix::One(base) = Gate::U(0, theta, phi, lam).matrix() else {
                unreachable!()
            };
            let u = base.scale(qfab_math::Complex64::cis(alpha));
            let seq = ZsxDecomposition::of(&u).emit(0);
            let got = matrix_of_sequence(&seq);
            assert!(got.approx_eq_up_to_phase(&u, 1e-8));
            assert!(seq.len() <= 5);
        }
    }

    #[test]
    fn sequence_length_is_minimal_for_special_angles() {
        // θ=π/2 family uses a single SX.
        let seq = lower_1q_to_ibm(&Gate::Ry(0, PI / 2.0));
        let sx_count = seq.iter().filter(|g| matches!(g, Gate::Sx(_))).count();
        assert_eq!(sx_count, 1, "{seq:?}");
        // Generic θ needs two SX.
        let seq = lower_1q_to_ibm(&Gate::Ry(0, 1.0));
        let sx_count = seq.iter().filter(|g| matches!(g, Gate::Sx(_))).count();
        assert_eq!(sx_count, 2, "{seq:?}");
    }

    #[test]
    fn norm_angle_range() {
        assert!((norm_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((norm_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((norm_angle(0.5) - 0.5).abs() < 1e-15);
        assert!(norm_angle(2.0 * PI).abs() < 1e-12);
    }

    #[test]
    fn anti_diagonal_case() {
        // A θ=π gate with nontrivial phases, e.g. Y.
        let GateMatrix::One(y) = Gate::Y(0).matrix() else {
            unreachable!()
        };
        let d = ZsxDecomposition::of(&y);
        assert!((d.theta - PI).abs() < 1e-12);
        let got = matrix_of_sequence(&d.emit(0));
        assert!(got.approx_eq_up_to_phase(&y, 1e-9));
    }

    #[test]
    fn near_identity_unitary() {
        let u = Mat2::from_rows([
            [c64(1.0, 0.0), c64(0.0, 0.0)],
            [c64(0.0, 0.0), c64(1.0, 1e-15)],
        ]);
        let seq = ZsxDecomposition::of(&u).emit(0);
        assert!(seq.len() <= 1);
    }
}
