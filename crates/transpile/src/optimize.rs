//! Peephole circuit optimization with commutation awareness.
//!
//! Local rewrites applied in a forward pass with backward scans, looped
//! to a fixpoint:
//!
//! 1. **identity pruning** — `Id` gates and zero-angle rotations vanish;
//! 2. **inverse cancellation** — `g · g⁻¹` pairs on identical operands
//!    vanish even when separated by gates that *commute* with `g`
//!    (diagonal gates slide past each other and past CX controls, which
//!    is what lets a lowered `QFA · QFA⁻¹` collapse completely);
//! 3. **phase merging** — diagonal single-qubit gates on the same qubit
//!    (`Z, S, S†, T, T†, RZ, P`) fuse into one `P` gate across any
//!    commuting separation.
//!
//! The result is equivalent to the input *up to global phase* (phase
//! merging canonicalizes `RZ` to `P`). The paper's Table I counts come
//! from unoptimized circuits, so the reproduction harness leaves this
//! pass off; `qfab-bench` ablates what it would save.

use qfab_circuit::{Circuit, Gate};
use qfab_telemetry as telemetry;
use qfab_telemetry::trace;
use std::f64::consts::PI;

const ANGLE_TOL: f64 = 1e-12;

/// What [`optimize`] did, for reporting and ablation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimizeReport {
    /// Gates in the input circuit.
    pub gates_before: usize,
    /// Gates in the optimized circuit.
    pub gates_after: usize,
    /// Gates removed by inverse cancellation (counts both of each pair).
    pub cancelled: usize,
    /// Gate pairs fused by phase merging.
    pub merged: usize,
    /// Identity/zero-angle gates pruned.
    pub pruned: usize,
    /// Fixpoint iterations taken.
    pub passes: usize,
}

/// Applies the peephole passes until no further rewrite fires.
pub fn optimize(circuit: &Circuit) -> (Circuit, OptimizeReport) {
    let _span = telemetry::histogram("transpile.optimize_ns").span();
    let _trace = trace::span_args(
        "transpile.optimize",
        &[("gates_in", trace::ArgValue::U64(circuit.len() as u64))],
    );
    let mut report = OptimizeReport {
        gates_before: circuit.len(),
        ..OptimizeReport::default()
    };
    let mut current = circuit.clone();
    loop {
        report.passes += 1;
        let pass_span = telemetry::histogram("transpile.optimize.pass_ns").span_detail();
        let pass_trace = trace::span_args(
            "transpile.optimize.pass",
            &[("pass", trace::ArgValue::U64(report.passes as u64))],
        );
        let gates_before_pass = current.len();
        let (next, changed) = one_pass(&current, &mut report);
        pass_trace.end_with_args(&[(
            "gate_delta",
            trace::ArgValue::I64(next.len() as i64 - gates_before_pass as i64),
        )]);
        drop(pass_span);
        current = next;
        if !changed || report.passes >= 32 {
            break;
        }
    }
    report.gates_after = current.len();
    if telemetry::enabled() {
        telemetry::counter("transpile.optimize.calls").incr();
        telemetry::counter("transpile.optimize.passes").add(report.passes as u64);
        telemetry::counter("transpile.optimize.cancelled").add(report.cancelled as u64);
        telemetry::counter("transpile.optimize.merged").add(report.merged as u64);
        telemetry::counter("transpile.optimize.pruned").add(report.pruned as u64);
        telemetry::counter("transpile.optimize.gates_removed")
            .add((report.gates_before - report.gates_after) as u64);
    }
    (current, report)
}

fn one_pass(circuit: &Circuit, report: &mut OptimizeReport) -> (Circuit, bool) {
    let mut slots: Vec<Option<Gate>> = Vec::with_capacity(circuit.len());
    let mut changed = false;

    'gates: for gate in circuit.gates() {
        let mut gate = *gate;
        if is_identity(&gate) {
            report.pruned += 1;
            changed = true;
            continue;
        }
        loop {
            // Backward scan: walk earlier live gates; stop at the first
            // one we can't slide past.
            let mut target: Option<usize> = None;
            for i in (0..slots.len()).rev() {
                let Some(prev) = slots[i] else { continue };
                if !shares_qubits(&prev, &gate) {
                    continue;
                }
                if same_operands(&prev, &gate)
                    && (is_inverse_pair(&prev, &gate)
                        || (diag_phase(&prev).is_some() && diag_phase(&gate).is_some()))
                {
                    target = Some(i);
                    break;
                }
                if commutes(&prev, &gate) {
                    continue;
                }
                break;
            }
            let Some(i) = target else { break };
            let prev = slots[i].take().expect("target slot is live");
            changed = true;
            if is_inverse_pair(&prev, &gate) {
                report.cancelled += 2;
                continue 'gates;
            }
            // Diagonal merge.
            let (a, b) = (
                diag_phase(&prev).expect("checked diagonal"),
                diag_phase(&gate).expect("checked diagonal"),
            );
            report.merged += 1;
            let total = norm_angle(a + b);
            if total.abs() <= ANGLE_TOL {
                report.pruned += 1;
                continue 'gates;
            }
            gate = Gate::Phase(gate.qubits()[0], total);
            // Loop: the merged gate may cancel or merge further back.
        }
        slots.push(Some(gate));
    }

    let mut out = Circuit::with_capacity(circuit.num_qubits(), slots.len());
    for g in slots.into_iter().flatten() {
        out.push(g);
    }
    (out, changed)
}

fn shares_qubits(a: &Gate, b: &Gate) -> bool {
    let bq = b.qubits();
    a.qubits()
        .as_slice()
        .iter()
        .any(|q| bq.as_slice().contains(q))
}

fn same_operands(a: &Gate, b: &Gate) -> bool {
    a.qubits() == b.qubits()
}

/// Conservative commutation test for gates that share at least one
/// qubit.
fn commutes(a: &Gate, b: &Gate) -> bool {
    if a.is_diagonal() && b.is_diagonal() {
        return true;
    }
    // Diagonal vs CX: commute iff the CX target is outside the diagonal
    // gate's support (a phase on the control slides through).
    match (cx_parts(a), cx_parts(b)) {
        (Some((_, ta)), Some((cb, tb))) => {
            // Two CXs: commute unless one's target feeds the other's
            // control (or targets/controls collide asymmetrically).
            let (ca, ta) = (cx_parts(a).unwrap().0, ta);
            ta != cb && tb != ca
        }
        (Some((_, t)), None) if b.is_diagonal() => !b.qubits().as_slice().contains(&t),
        (None, Some((_, t))) if a.is_diagonal() => !a.qubits().as_slice().contains(&t),
        _ => false,
    }
}

fn cx_parts(g: &Gate) -> Option<(u32, u32)> {
    match *g {
        Gate::Cx { control, target } => Some((control, target)),
        _ => None,
    }
}

/// True for gates that act as the identity (up to global phase).
fn is_identity(g: &Gate) -> bool {
    match *g {
        Gate::I(_) => true,
        Gate::Rx(_, t) | Gate::Ry(_, t) | Gate::Rz(_, t) | Gate::Phase(_, t) => {
            norm_angle(t).abs() <= ANGLE_TOL
        }
        Gate::Cphase { theta, .. } | Gate::Ccphase { theta, .. } => {
            norm_angle(theta).abs() <= ANGLE_TOL
        }
        _ => false,
    }
}

/// True when `b` undoes `a` exactly (same operands, inverse action).
fn is_inverse_pair(a: &Gate, b: &Gate) -> bool {
    use Gate::*;
    if a.qubits() != b.qubits() {
        return false;
    }
    match (*a, *b) {
        (Rx(_, s), Rx(_, t))
        | (Ry(_, s), Ry(_, t))
        | (Rz(_, s), Rz(_, t))
        | (Phase(_, s), Phase(_, t)) => norm_angle(s + t).abs() <= ANGLE_TOL,
        (Cphase { theta: s, .. }, Cphase { theta: t, .. })
        | (Ccphase { theta: s, .. }, Ccphase { theta: t, .. }) => {
            norm_angle(s + t).abs() <= ANGLE_TOL
        }
        (U(..), U(..)) => false,
        // Mixed diagonal pairs (e.g. S then Phase(−π/2)) cancel too.
        _ => match (diag_phase(a), diag_phase(b)) {
            (Some(s), Some(t)) => norm_angle(s + t).abs() <= ANGLE_TOL,
            _ => a.inverse() == *b,
        },
    }
}

/// For diagonal single-qubit gates, the phase angle of `diag(1, e^{iθ})`
/// they equal up to global phase.
fn diag_phase(g: &Gate) -> Option<f64> {
    match *g {
        Gate::Z(_) => Some(PI),
        Gate::S(_) => Some(PI / 2.0),
        Gate::Sdg(_) => Some(-PI / 2.0),
        Gate::T(_) => Some(PI / 4.0),
        Gate::Tdg(_) => Some(-PI / 4.0),
        Gate::Rz(_, t) | Gate::Phase(_, t) => Some(t),
        _ => None,
    }
}

fn norm_angle(a: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut x = a % two_pi;
    if x > PI {
        x -= two_pi;
    } else if x <= -PI {
        x += two_pi;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{transpile, Basis};
    use crate::verify::equivalent_up_to_phase_exhaustive;

    #[test]
    fn identities_are_pruned() {
        let mut c = Circuit::new(2);
        c.id(0).rz(0.0, 1).h(0).phase(2.0 * PI, 1);
        let (opt, report) = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(report.pruned, 3);
        assert_eq!(opt.gates()[0], Gate::H(0));
    }

    #[test]
    fn adjacent_cx_pairs_cancel() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        let (opt, report) = optimize(&c);
        assert!(opt.is_empty());
        assert_eq!(report.cancelled, 2);
    }

    #[test]
    fn reversed_cx_does_not_cancel() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn hh_cancels_through_unrelated_gates() {
        let mut c = Circuit::new(2);
        c.h(0).x(1).h(0);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.gates()[0], Gate::X(1));
    }

    #[test]
    fn cx_blocks_h_cancellation() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn phase_slides_through_cx_control() {
        // P on the control commutes with CX, so the pair cancels.
        let mut c = Circuit::new(2);
        c.phase(0.4, 0).cx(0, 1).phase(-0.4, 0);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(
            opt.gates()[0],
            Gate::Cx {
                control: 0,
                target: 1
            }
        );
        assert!(equivalent_up_to_phase_exhaustive(&c, &opt, 1e-10));
    }

    #[test]
    fn phase_does_not_slide_through_cx_target() {
        let mut c = Circuit::new(2);
        c.phase(0.4, 1).cx(0, 1).phase(-0.4, 1);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 3, "phases around a CX target must stay");
    }

    #[test]
    fn cx_pair_cancels_across_control_phase() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).phase(0.7, 0).cx(0, 1);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.gates()[0], Gate::Phase(0, 0.7));
        assert!(equivalent_up_to_phase_exhaustive(&c, &opt, 1e-10));
    }

    #[test]
    fn cx_sharing_target_commute() {
        // CX(0,2) and CX(1,2) commute: the outer CX(0,2) pair cancels.
        let mut c = Circuit::new(3);
        c.cx(0, 2).cx(1, 2).cx(0, 2);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert!(equivalent_up_to_phase_exhaustive(&c, &opt, 1e-10));
    }

    #[test]
    fn cx_feeding_control_blocks() {
        // CX(0,1) then CX(1,2): the second's control is the first's
        // target — they do not commute.
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2).cx(0, 1);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn rotations_cancel_on_opposite_angles() {
        let mut c = Circuit::new(1);
        c.rz(0.7, 0).rz(-0.7, 0);
        let (opt, _) = optimize(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn mixed_diagonal_inverse_pairs_cancel() {
        let mut c = Circuit::new(1);
        c.s(0).phase(-PI / 2.0, 0);
        let (opt, _) = optimize(&c);
        assert!(opt.is_empty(), "S · P(−π/2) should vanish, got {opt}");
    }

    #[test]
    fn phase_gates_merge() {
        let mut c = Circuit::new(1);
        c.s(0).t(0);
        let (opt, report) = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(report.merged, 1);
        match opt.gates()[0] {
            Gate::Phase(0, t) => assert!((t - 3.0 * PI / 4.0).abs() < 1e-12),
            ref g => panic!("unexpected {g}"),
        }
    }

    #[test]
    fn merge_chain_collapses_to_nothing() {
        let mut c = Circuit::new(1);
        c.t(0).t(0).t(0).t(0).t(0).t(0).t(0).t(0); // 8 T = I
        let (opt, _) = optimize(&c);
        assert!(opt.is_empty(), "got {opt}");
    }

    #[test]
    fn cancellations_cascade() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).cx(0, 1).h(0);
        let (opt, report) = optimize(&c);
        assert!(opt.is_empty(), "got {opt}");
        assert_eq!(report.cancelled, 4);
    }

    #[test]
    fn optimization_preserves_semantics() {
        let mut c = Circuit::new(3);
        c.h(0)
            .t(0)
            .s(0)
            .cx(0, 1)
            .cx(0, 1)
            .rz(0.4, 1)
            .rz(0.3, 1)
            .cphase(0.5, 1, 2)
            .cphase(-0.5, 1, 2)
            .x(2)
            .id(0)
            .swap(1, 2)
            .h(0);
        let (opt, report) = optimize(&c);
        assert!(opt.len() < c.len());
        assert_eq!(report.gates_before, c.len());
        assert_eq!(report.gates_after, opt.len());
        assert!(equivalent_up_to_phase_exhaustive(&c, &opt, 1e-9));
    }

    #[test]
    fn optimize_is_idempotent() {
        let mut c = Circuit::new(3);
        c.h(0).t(0).t(0).cx(0, 1).x(2).cx(0, 1).sx(2);
        let (once, _) = optimize(&c);
        let (twice, report) = optimize(&once);
        assert_eq!(once, twice);
        assert_eq!(report.cancelled + report.merged + report.pruned, 0);
    }

    #[test]
    fn ccphase_inverse_pairs_cancel() {
        let mut c = Circuit::new(3);
        c.ccphase(0.9, 0, 1, 2).ccphase(-0.9, 0, 1, 2);
        let (opt, _) = optimize(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn qft_times_inverse_qft_fully_cancels() {
        let mut qft = Circuit::new(3);
        qft.h(2)
            .cphase(PI / 2.0, 1, 2)
            .cphase(PI / 4.0, 0, 2)
            .h(1)
            .cphase(PI / 2.0, 0, 1)
            .h(0);
        let mut both = Circuit::new(3);
        both.extend(&qft).extend(&qft.inverse());
        let (opt, _) = optimize(&both);
        assert!(opt.is_empty(), "QFT·QFT⁻¹ should vanish, got {opt}");
    }

    #[test]
    fn lowered_qft_times_inverse_shrinks_substantially() {
        // The hard case the commutation rules exist for: after lowering
        // CP to CX+phases, cancellation requires sliding phases through
        // CX controls. A peephole pass cannot fully collapse the
        // CX-conjugated phase patterns (that needs resynthesis), but it
        // must remove a large fraction while preserving semantics.
        let mut qft = Circuit::new(3);
        qft.h(2)
            .cphase(PI / 2.0, 1, 2)
            .cphase(PI / 4.0, 0, 2)
            .h(1)
            .cphase(PI / 2.0, 0, 1)
            .h(0);
        let mut both = Circuit::new(3);
        both.extend(&qft).extend(&qft.inverse());
        let lowered = transpile(&both, Basis::CxPlus1q);
        let (opt, report) = optimize(&lowered);
        assert!(
            opt.len() < lowered.len(),
            "expected a reduction: {} -> {}",
            lowered.len(),
            opt.len()
        );
        assert!(report.cancelled > 0);
        assert!(equivalent_up_to_phase_exhaustive(&lowered, &opt, 1e-9));
    }

    #[test]
    fn mirrored_basis_circuit_fully_cancels() {
        // Lower first, then mirror at the basis level: the cascade must
        // erase everything.
        let mut qft = Circuit::new(3);
        qft.h(2)
            .cphase(PI / 2.0, 1, 2)
            .cphase(PI / 4.0, 0, 2)
            .h(1)
            .cphase(PI / 2.0, 0, 1)
            .h(0);
        let lowered = transpile(&qft, Basis::CxPlus1q);
        let mut mirrored = lowered.clone();
        mirrored.extend(&lowered.inverse());
        let (opt, _) = optimize(&mirrored);
        assert!(
            opt.is_empty(),
            "mirrored basis circuit should vanish, got {opt}"
        );
    }

    #[test]
    fn optimized_lowered_circuits_stay_equivalent() {
        let mut c = Circuit::new(4);
        c.h(0)
            .cphase(PI / 4.0, 0, 1)
            .ch(1, 2)
            .ccphase(PI / 8.0, 0, 1, 3)
            .swap(1, 3)
            .cphase(-PI / 4.0, 0, 1);
        let lowered = transpile(&c, Basis::CxPlus1q);
        let (opt, _) = optimize(&lowered);
        assert!(equivalent_up_to_phase_exhaustive(&lowered, &opt, 1e-9));
    }
}
