#![warn(missing_docs)]

//! Transpilation of qfab circuits to hardware bases.
//!
//! Two targets, mirroring the two granularities the paper works at:
//!
//! * [`Basis::CxPlus1q`] — every multi-qubit gate is lowered to CNOTs
//!   plus single-qubit gates, but single-qubit gates stay atomic. This
//!   is the granularity of the paper's Table I gate counts (one "1q
//!   gate" per logical single-qubit operation, one "2q gate" per CX) and
//!   the granularity at which its noise model attaches depolarizing
//!   error.
//! * [`Basis::Ibm`] — additionally lowers every single-qubit gate to the
//!   IBM superconducting basis {Id, X, RZ, SX} via ZSX Euler angles, the
//!   gate set the paper names for its decompositions.
//!
//! The standard lowerings used (identical to Qiskit's, which is how the
//! Table I counts are matched exactly):
//!
//! | gate | lowering | 1q/2q cost |
//! |---|---|---|
//! | CP(θ) | P(θ/2)c · CX · P(−θ/2)t · CX · P(θ/2)t | 3 / 2 |
//! | CCP(θ) | 3×CP(±θ/2) + 2×CX, CPs expanded | 9 / 8 |
//! | CH | S·H·T target, CX, T†·H·S† target | 6 / 1 |
//! | CZ | H t · CX · H t | 2 / 1 |
//! | SWAP | 3 × CX | 0 / 3 |
//! | CCX | 6 CX + 2 H + 7 T/T† | 9 / 6 |
//! | CSWAP | CX + CCX + CX, CCX expanded | 9 / 8 |
//!
//! [`optimize`] provides peephole passes (adjacent-inverse cancellation,
//! phase-rotation merging, identity pruning); the Table I reproduction
//! runs *without* them, matching the paper, and they are ablated in
//! `qfab-bench`.
//!
//! [`verify`] checks unitary equivalence of original and transpiled
//! circuits by direct simulation, used pervasively in tests.

pub mod basis;
pub mod euler;
pub mod optimize;
pub mod routing;
pub mod verify;

pub use basis::{transpile, Basis};
pub use euler::ZsxDecomposition;
pub use optimize::{optimize, OptimizeReport};
pub use routing::{route, route_and_lower, CouplingMap, RoutedCircuit};
