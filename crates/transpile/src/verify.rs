//! Equivalence checking between circuits by direct simulation.
//!
//! Two circuits over `n` qubits implement the same unitary (up to a
//! global phase) iff they act identically on a basis of states. Rather
//! than compare full `2^n × 2^n` matrices, we act on `2^n` basis states
//! — and, for a cheap randomized check, on a handful of random states,
//! which catches any discrepancy with overwhelming probability.

use qfab_circuit::Circuit;
use qfab_math::complex::{c64, Complex64};
use qfab_math::rng::Xoshiro256StarStar;
use qfab_sim::StateVector;

/// Exhaustive check: compares the action of both circuits on every
/// computational basis state, up to one *common* global phase. Cost is
/// `O(4^n)`; intended for tests with small `n`.
pub fn equivalent_up_to_phase_exhaustive(a: &Circuit, b: &Circuit, tol: f64) -> bool {
    assert_eq!(a.num_qubits(), b.num_qubits(), "qubit count mismatch");
    let n = a.num_qubits();
    let d = 1usize << n;
    let mut phase: Option<Complex64> = None;
    for basis in 0..d {
        let mut sa = StateVector::basis_state(n, basis);
        let mut sb = StateVector::basis_state(n, basis);
        sa.apply_circuit(a);
        sb.apply_circuit(b);
        // Determine / reuse the global phase from the first basis state
        // with non-negligible amplitude.
        let amps_a = sa.amplitudes();
        let amps_b = sb.amplitudes();
        for i in 0..d {
            let (x, y) = (amps_a[i], amps_b[i]);
            let (nx, ny) = (x.norm(), y.norm());
            if (nx - ny).abs() > tol {
                return false;
            }
            if nx > 1e-7 {
                let ratio = x / y;
                match phase {
                    None => phase = Some(ratio),
                    Some(p) => {
                        if !(ratio - p).norm_sqr().sqrt().le(&tol) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// Randomized check: compares the action on `trials` random states via
/// the overlap `|<ψ_a|ψ_b>| ≈ 1`. Cost `O(trials · gates · 2^n)`.
pub fn equivalent_up_to_phase_randomized(
    a: &Circuit,
    b: &Circuit,
    trials: usize,
    tol: f64,
    seed: u64,
) -> bool {
    assert_eq!(a.num_qubits(), b.num_qubits(), "qubit count mismatch");
    let n = a.num_qubits();
    let d = 1usize << n;
    let mut rng = Xoshiro256StarStar::new(seed);
    for _ in 0..trials {
        let amps: Vec<Complex64> = (0..d)
            .map(|_| c64(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        let amps: Vec<Complex64> = amps.into_iter().map(|a| a / norm).collect();
        let mut sa = StateVector::from_amplitudes(n, amps.clone());
        let mut sb = StateVector::from_amplitudes(n, amps);
        sa.apply_circuit(a);
        sb.apply_circuit(b);
        if !qfab_math::approx::states_equal_up_to_phase(sa.amplitudes(), sb.amplitudes(), tol) {
            return false;
        }
    }
    true
}

/// Panics with a diagnostic when the circuits are not equivalent up to a
/// global phase (exhaustive check — use in tests on small circuits).
pub fn assert_equivalent_up_to_phase(a: &Circuit, b: &Circuit, tol: f64) {
    assert!(
        equivalent_up_to_phase_exhaustive(a, b, tol),
        "circuits are not equivalent up to global phase:\n--- a ---\n{a}\n--- b ---\n{b}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn identical_circuits_are_equivalent() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cphase(0.4, 1, 2);
        assert!(equivalent_up_to_phase_exhaustive(&c, &c, 1e-10));
        assert!(equivalent_up_to_phase_randomized(&c, &c, 5, 1e-10, 1));
    }

    #[test]
    fn global_phase_is_ignored() {
        // RZ(θ) vs Phase(θ) differ by exactly a global phase.
        let mut a = Circuit::new(2);
        a.rz(0.7, 0).h(1);
        let mut b = Circuit::new(2);
        b.phase(0.7, 0).h(1);
        assert!(equivalent_up_to_phase_exhaustive(&a, &b, 1e-10));
        assert!(equivalent_up_to_phase_randomized(&a, &b, 5, 1e-9, 2));
    }

    #[test]
    fn relative_phase_differences_are_caught() {
        // S vs T differ by a *relative* phase — not equivalent.
        let mut a = Circuit::new(1);
        a.s(0);
        let mut b = Circuit::new(1);
        b.t(0);
        assert!(!equivalent_up_to_phase_exhaustive(&a, &b, 1e-10));
        assert!(!equivalent_up_to_phase_randomized(&a, &b, 5, 1e-9, 3));
    }

    #[test]
    fn different_permutations_are_caught() {
        let mut a = Circuit::new(2);
        a.cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(1, 0);
        assert!(!equivalent_up_to_phase_exhaustive(&a, &b, 1e-10));
        assert!(!equivalent_up_to_phase_randomized(&a, &b, 3, 1e-9, 4));
    }

    #[test]
    fn hzh_equals_x_as_circuits() {
        let mut a = Circuit::new(1);
        a.h(0).z(0).h(0);
        let mut b = Circuit::new(1);
        b.x(0);
        assert_equivalent_up_to_phase(&a, &b, 1e-10);
    }

    #[test]
    fn cz_symmetry() {
        let mut a = Circuit::new(2);
        a.cz(0, 1);
        let mut b = Circuit::new(2);
        b.cz(1, 0);
        assert_equivalent_up_to_phase(&a, &b, 1e-10);
    }

    #[test]
    #[should_panic(expected = "not equivalent")]
    fn assert_panics_on_mismatch() {
        let mut a = Circuit::new(1);
        a.x(0);
        let b = Circuit::new(1);
        assert_equivalent_up_to_phase(&a, &b, 1e-10);
    }

    #[test]
    fn qft_like_circuit_vs_itself_rebuilt() {
        let build = || {
            let mut c = Circuit::new(3);
            c.h(2)
                .cphase(PI / 2.0, 1, 2)
                .cphase(PI / 4.0, 0, 2)
                .h(1)
                .cphase(PI / 2.0, 0, 1)
                .h(0)
                .swap(0, 2);
            c
        };
        assert_equivalent_up_to_phase(&build(), &build(), 1e-10);
    }
}
