//! Qubit connectivity and SWAP routing.
//!
//! The paper evaluates on "an idealized layout with complete qubit
//! connectivity" and explicitly defers the noise associated with
//! "qubit-layout and/or swap-gates". This module supplies that missing
//! substrate: hardware coupling maps and a greedy shortest-path SWAP
//! router, so the connectivity cost of the arithmetic circuits can be
//! quantified (see the `ablation` benches and `routing_inflation`
//! tests — on a linear chain the QFA's CX count grows severalfold,
//! which is exactly why the paper's all-to-all idealization flatters
//! every success rate).
//!
//! The router is deliberately simple (move one endpoint along a
//! shortest path, emit, leave the layout where it lands — no lookahead,
//! no SABRE-style reordering): a faithful baseline, not a
//! state-of-the-art mapper.

use qfab_circuit::Circuit;
use std::collections::VecDeque;

/// An undirected hardware coupling graph over physical qubits.
#[derive(Clone, Debug)]
pub struct CouplingMap {
    n: u32,
    adjacent: Vec<Vec<u32>>,
    /// All-pairs hop distances (BFS).
    dist: Vec<Vec<u32>>,
}

impl CouplingMap {
    /// Builds a map from an edge list (indices < `n`; duplicates and
    /// self-loops rejected).
    pub fn new(n: u32, edges: &[(u32, u32)]) -> Self {
        assert!(n >= 1, "need at least one qubit");
        let mut adjacent = vec![Vec::new(); n as usize];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            assert_ne!(a, b, "self-loop at {a}");
            assert!(
                !adjacent[a as usize].contains(&b),
                "duplicate edge ({a},{b})"
            );
            adjacent[a as usize].push(b);
            adjacent[b as usize].push(a);
        }
        let dist = (0..n).map(|s| bfs(&adjacent, s)).collect();
        Self { n, adjacent, dist }
    }

    /// Complete connectivity (the paper's idealization).
    pub fn all_to_all(n: u32) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        Self::new(n, &edges)
    }

    /// A linear chain `0 — 1 — … — n−1`.
    pub fn linear(n: u32) -> Self {
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Self::new(n, &edges)
    }

    /// A ring (chain with the ends joined).
    pub fn ring(n: u32) -> Self {
        assert!(n >= 3, "a ring needs at least 3 qubits");
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        Self::new(n, &edges)
    }

    /// A rows×cols grid.
    pub fn grid(rows: u32, cols: u32) -> Self {
        let n = rows * cols;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        Self::new(n, &edges)
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> u32 {
        self.n
    }

    /// Whether two physical qubits are directly coupled.
    pub fn connected(&self, a: u32, b: u32) -> bool {
        self.adjacent[a as usize].contains(&b)
    }

    /// Hop distance between physical qubits (`u32::MAX` if disconnected).
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        self.dist[a as usize][b as usize]
    }

    /// One shortest path from `a` to `b` (inclusive of both endpoints).
    pub fn shortest_path(&self, a: u32, b: u32) -> Vec<u32> {
        assert!(
            self.distance(a, b) != u32::MAX,
            "qubits {a},{b} disconnected"
        );
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            // Greedy descent of the distance field.
            let next = *self.adjacent[cur as usize]
                .iter()
                .min_by_key(|&&nb| self.dist[nb as usize][b as usize])
                .expect("connected node has neighbours");
            path.push(next);
            cur = next;
        }
        path
    }
}

fn bfs(adjacent: &[Vec<u32>], start: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; adjacent.len()];
    dist[start as usize] = 0;
    let mut queue = VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        for &nb in &adjacent[v as usize] {
            if dist[nb as usize] == u32::MAX {
                dist[nb as usize] = dist[v as usize] + 1;
                queue.push_back(nb);
            }
        }
    }
    dist
}

/// The result of routing a circuit onto a coupling map.
#[derive(Clone, Debug)]
pub struct RoutedCircuit {
    /// The physical circuit: every 2q gate acts on coupled qubits.
    pub circuit: Circuit,
    /// `final_layout[logical]` = physical qubit holding that logical
    /// qubit after the circuit (the initial layout is the identity).
    pub final_layout: Vec<u32>,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
}

/// Routes a transpiled (1q/2q-only) circuit onto `coupling` with the
/// identity initial layout, inserting SWAPs where needed.
///
/// Panics on 3-qubit gates (transpile first, as the paper does) and on
/// disconnected coupling maps.
pub fn route(circuit: &Circuit, coupling: &CouplingMap) -> RoutedCircuit {
    assert!(
        circuit.num_qubits() <= coupling.num_qubits(),
        "circuit needs {} qubits, device has {}",
        circuit.num_qubits(),
        coupling.num_qubits()
    );
    let n = coupling.num_qubits();
    // layout[logical] = physical; position[physical] = logical.
    let mut layout: Vec<u32> = (0..n).collect();
    let mut position: Vec<u32> = (0..n).collect();
    let mut out = Circuit::with_capacity(n, circuit.len() * 2);
    let mut swaps = 0usize;

    for gate in circuit.gates() {
        match gate.arity() {
            1 => {
                let q = gate.qubits()[0];
                out.push(gate.map_qubits(|_| layout[q as usize]));
            }
            2 => {
                let ops = gate.qubits();
                let (a, b) = (ops[0], ops[1]);
                // Walk the first operand toward the second.
                loop {
                    let (pa, pb) = (layout[a as usize], layout[b as usize]);
                    if coupling.connected(pa, pb) {
                        break;
                    }
                    let path = coupling.shortest_path(pa, pb);
                    let step = path[1];
                    out.swap(pa, step);
                    swaps += 1;
                    // Update the trackers for the physical swap.
                    let (la, lb) = (position[pa as usize], position[step as usize]);
                    position.swap(pa as usize, step as usize);
                    layout[la as usize] = step;
                    layout[lb as usize] = pa;
                }
                out.push(gate.map_qubits(|q| layout[q as usize]));
            }
            _ => panic!("route() requires a transpiled circuit; found {gate}"),
        }
    }
    RoutedCircuit {
        circuit: out,
        final_layout: layout,
        swaps_inserted: swaps,
    }
}

/// Convenience: routes and then lowers inserted SWAPs to CX, returning
/// the physical circuit plus the CX inflation factor relative to the
/// input's 2q count.
pub fn route_and_lower(circuit: &Circuit, coupling: &CouplingMap) -> (RoutedCircuit, f64) {
    let before_2q = circuit.counts().two_qubit.max(1);
    let routed = route(circuit, coupling);
    let lowered = crate::basis::transpile(&routed.circuit, crate::basis::Basis::CxPlus1q);
    let after_2q = lowered.counts().two_qubit;
    let inflation = after_2q as f64 / before_2q as f64;
    (
        RoutedCircuit {
            circuit: lowered,
            final_layout: routed.final_layout,
            swaps_inserted: routed.swaps_inserted,
        },
        inflation,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_sim::StateVector;

    /// Simulates logical and routed circuits and compares under the
    /// final layout permutation.
    fn assert_routing_preserves_semantics(circuit: &Circuit, coupling: &CouplingMap) {
        let routed = route(circuit, coupling);
        let n = coupling.num_qubits();
        for basis in [0usize, 1, 5, (1 << n.min(6)) - 1] {
            let basis = basis & ((1 << n) - 1);
            let mut logical = StateVector::basis_state(n, basis);
            logical.apply_circuit(circuit);
            let mut physical = StateVector::basis_state(n, basis);
            physical.apply_circuit(&routed.circuit);
            // Permute physical amplitudes back to logical ordering:
            // logical index l gathers physical bits at final_layout.
            let d = 1usize << n;
            let mut back = vec![qfab_math::Complex64::ZERO; d];
            for phys_idx in 0..d {
                let mut log_idx = 0usize;
                for l in 0..n {
                    let p = routed.final_layout[l as usize];
                    if (phys_idx >> p) & 1 == 1 {
                        log_idx |= 1 << l;
                    }
                }
                back[log_idx] = physical.amplitudes()[phys_idx];
            }
            assert!(
                qfab_math::approx::approx_eq_slice(logical.amplitudes(), &back, 1e-9),
                "routing changed semantics on basis {basis}"
            );
        }
    }

    fn test_circuit(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n {
            c.cx(q, (q + n / 2) % n);
            c.rz(0.1 * q as f64 + 0.05, q);
        }
        c.cphase(0.7, 0, n - 1);
        c
    }

    #[test]
    fn coupling_map_construction_and_distances() {
        let lin = CouplingMap::linear(5);
        assert!(lin.connected(0, 1));
        assert!(!lin.connected(0, 2));
        assert_eq!(lin.distance(0, 4), 4);
        assert_eq!(lin.shortest_path(0, 3), vec![0, 1, 2, 3]);

        let ring = CouplingMap::ring(6);
        assert_eq!(ring.distance(0, 3), 3);
        assert_eq!(ring.distance(0, 5), 1);

        let grid = CouplingMap::grid(2, 3);
        assert_eq!(grid.num_qubits(), 6);
        assert!(grid.connected(0, 3));
        assert_eq!(grid.distance(0, 5), 3);

        let full = CouplingMap::all_to_all(4);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(full.distance(a, b), 1);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_edges() {
        let _ = CouplingMap::new(2, &[(0, 5)]);
    }

    #[test]
    fn all_to_all_inserts_no_swaps() {
        let c = test_circuit(5);
        let routed = route(&c, &CouplingMap::all_to_all(5));
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.circuit.len(), c.len());
        assert_eq!(routed.final_layout, (0..5).collect::<Vec<u32>>());
    }

    #[test]
    fn linear_routing_preserves_semantics() {
        let c = test_circuit(5);
        assert_routing_preserves_semantics(&c, &CouplingMap::linear(5));
    }

    #[test]
    fn ring_and_grid_routing_preserve_semantics() {
        let c = test_circuit(6);
        assert_routing_preserves_semantics(&c, &CouplingMap::ring(6));
        assert_routing_preserves_semantics(&c, &CouplingMap::grid(2, 3));
    }

    #[test]
    fn distant_gate_costs_swaps_on_a_chain() {
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let routed = route(&c, &CouplingMap::linear(5));
        assert_eq!(routed.swaps_inserted, 3);
        // The final layout reflects the moved qubit.
        assert_ne!(routed.final_layout, (0..5).collect::<Vec<u32>>());
        assert_routing_preserves_semantics(&c, &CouplingMap::linear(5));
    }

    #[test]
    fn routed_two_qubit_gates_respect_coupling() {
        let c = test_circuit(6);
        let coupling = CouplingMap::linear(6);
        let routed = route(&c, &coupling);
        for g in routed.circuit.gates() {
            if g.arity() == 2 {
                let ops = g.qubits();
                assert!(
                    coupling.connected(ops[0], ops[1]),
                    "{g} violates the coupling map"
                );
            }
        }
    }

    #[test]
    fn qfa_inflation_on_linear_topology() {
        // The connectivity cost the paper's idealization hides: routing
        // the transpiled QFA(4,5) onto a 9-qubit chain must inflate the
        // CX count substantially.
        let built = qfab_core_stub_qfa();
        let lowered = crate::basis::transpile(&built, crate::basis::Basis::CxPlus1q);
        let (_, inflation) = route_and_lower(&lowered, &CouplingMap::linear(9));
        assert!(
            inflation > 1.3,
            "expected meaningful CX inflation on a chain, got {inflation:.2}x"
        );
        let (_, ideal) = route_and_lower(&lowered, &CouplingMap::all_to_all(9));
        assert!((ideal - 1.0).abs() < 1e-9);
    }

    /// A QFA(4,5)-shaped circuit built locally (qfab-core depends on
    /// this crate, so tests here can't use it; the structure is what
    /// matters for the inflation measurement).
    fn qfab_core_stub_qfa() -> Circuit {
        let mut c = Circuit::new(9);
        let m = 5u32;
        let y0 = 4u32;
        // QFT on y (qubits 4..9).
        for t in (1..=m).rev() {
            c.h(y0 + t - 1);
            for l in 2..=t {
                c.cphase(
                    2.0 * std::f64::consts::PI / (1u64 << l) as f64,
                    y0 + t - l,
                    y0 + t - 1,
                );
            }
        }
        // Add step: x qubits 0..4 control rotations on y.
        for t in (1..=m).rev() {
            for i in (1..=t.min(4)).rev() {
                c.cphase(
                    2.0 * std::f64::consts::PI / (1u64 << (t - i + 1)) as f64,
                    i - 1,
                    y0 + t - 1,
                );
            }
        }
        c
    }
}
