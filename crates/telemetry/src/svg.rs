//! Zero-dependency SVG line charts.
//!
//! The result dashboard renders the paper's success-vs-error-rate
//! panels as inline SVG; this module is the hand-rolled chart builder
//! behind it. Like the rest of the crate it is `std`-only and, more
//! importantly, **deterministic**: the same [`LineChart`] value always
//! renders to the same bytes (fixed-precision coordinate formatting,
//! no randomized ids, insertion-ordered elements), so dashboards can
//! be compared with `cmp`.
//!
//! Scope is deliberately small — line series with optional per-point
//! vertical error bars, linear or log₁₀ x-axes, caller-supplied tick
//! labels, a legend, and one optional dashed reference line. Anything
//! fancier belongs in a real plotting library, which this workspace
//! intentionally does not depend on.

use std::fmt::Write as _;

/// Horizontal axis mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum XScale {
    /// Positions proportional to the value.
    #[default]
    Linear,
    /// Positions proportional to log₁₀ of the value. Points and ticks
    /// with `x ≤ 0` cannot be placed and are skipped.
    Log10,
}

/// One plotted point.
#[derive(Clone, Debug, Default)]
pub struct DataPoint {
    /// Horizontal value (data units).
    pub x: f64,
    /// Vertical value (data units).
    pub y: f64,
    /// Lower end of the error bar, when present.
    pub y_lo: Option<f64>,
    /// Upper end of the error bar, when present.
    pub y_hi: Option<f64>,
    /// Hover text (`<title>` element), when present.
    pub note: Option<String>,
}

impl DataPoint {
    /// A bare point with no error bar.
    pub fn new(x: f64, y: f64) -> Self {
        Self {
            x,
            y,
            ..Self::default()
        }
    }

    /// A point with a vertical error bar `[lo, hi]`.
    pub fn with_bar(x: f64, y: f64, lo: f64, hi: f64) -> Self {
        Self {
            x,
            y,
            y_lo: Some(lo),
            y_hi: Some(hi),
            note: None,
        }
    }
}

/// One line series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Stroke/fill color (any SVG color string).
    pub color: String,
    /// Points in drawing order.
    pub points: Vec<DataPoint>,
}

/// A line chart with error bars, ticks, a legend, and an optional
/// dashed vertical reference line.
#[derive(Clone, Debug)]
pub struct LineChart {
    /// Chart title (rendered top-left).
    pub title: String,
    /// X-axis caption.
    pub x_label: String,
    /// Y-axis caption.
    pub y_label: String,
    /// Horizontal axis mapping.
    pub x_scale: XScale,
    /// Bottom of the y range (data units).
    pub y_min: f64,
    /// Top of the y range (data units).
    pub y_max: f64,
    /// X tick positions and labels. The x range is the hull of tick
    /// and point positions.
    pub x_ticks: Vec<(f64, String)>,
    /// Y tick positions and labels (clamped to the y range).
    pub y_ticks: Vec<(f64, String)>,
    /// The series, drawn (and listed in the legend) in order.
    pub series: Vec<Series>,
    /// Optional dashed vertical line with a label.
    pub ref_x: Option<(f64, String)>,
    /// Total width in px.
    pub width: u32,
    /// Total height in px.
    pub height: u32,
}

impl LineChart {
    /// A chart with the dashboard's default geometry and a 0–100 y
    /// range.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            x_scale: XScale::Linear,
            y_min: 0.0,
            y_max: 100.0,
            x_ticks: Vec::new(),
            y_ticks: Vec::new(),
            series: Vec::new(),
            ref_x: None,
            width: 460,
            height: 300,
        }
    }

    /// Renders the chart as a standalone `<svg>` element.
    pub fn render(&self) -> String {
        Frame::new(self).render()
    }
}

/// Escapes text for use in XML content and attribute values.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

/// Fixed-precision pixel coordinate — the determinism choke point.
fn px(v: f64) -> String {
    format!("{v:.2}")
}

/// Resolved plot geometry plus the axis transforms.
struct Frame<'a> {
    chart: &'a LineChart,
    left: f64,
    top: f64,
    right: f64,
    bottom: f64,
    x_lo: f64,
    x_hi: f64,
}

const MARGIN_LEFT: f64 = 52.0;
const MARGIN_RIGHT: f64 = 14.0;
const MARGIN_TOP: f64 = 26.0;
const MARGIN_BOTTOM: f64 = 44.0;

impl<'a> Frame<'a> {
    fn new(chart: &'a LineChart) -> Self {
        let mut xs: Vec<f64> = Vec::new();
        for (x, _) in &chart.x_ticks {
            if let Some(t) = transform(chart.x_scale, *x) {
                xs.push(t);
            }
        }
        for s in &chart.series {
            for p in &s.points {
                if let Some(t) = transform(chart.x_scale, p.x) {
                    xs.push(t);
                }
            }
        }
        let (mut x_lo, mut x_hi) = xs
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        if xs.is_empty() {
            (x_lo, x_hi) = (0.0, 1.0);
        } else if x_hi - x_lo < 1e-12 {
            // Degenerate domain: center the single position.
            (x_lo, x_hi) = (x_lo - 0.5, x_hi + 0.5);
        }
        Self {
            chart,
            left: MARGIN_LEFT,
            top: MARGIN_TOP,
            right: chart.width as f64 - MARGIN_RIGHT,
            bottom: chart.height as f64 - MARGIN_BOTTOM,
            x_lo,
            x_hi,
        }
    }

    fn x_px(&self, x: f64) -> Option<f64> {
        let t = transform(self.chart.x_scale, x)?;
        let frac = (t - self.x_lo) / (self.x_hi - self.x_lo);
        Some(self.left + frac * (self.right - self.left))
    }

    fn y_px(&self, y: f64) -> f64 {
        let c = &self.chart;
        let span = (c.y_max - c.y_min).max(1e-12);
        let frac = ((y - c.y_min) / span).clamp(0.0, 1.0);
        self.bottom - frac * (self.bottom - self.top)
    }

    fn render(&self) -> String {
        let c = self.chart;
        let mut s = String::new();
        let _ = write!(
            s,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {w} {h}\" \
             width=\"{w}\" height=\"{h}\" font-family=\"sans-serif\" font-size=\"11\">",
            w = c.width,
            h = c.height
        );
        let _ = write!(
            s,
            "<text x=\"{}\" y=\"16\" font-size=\"13\" font-weight=\"bold\">{}</text>",
            px(self.left),
            escape(&c.title)
        );
        self.render_grid_and_axes(&mut s);
        self.render_ref_line(&mut s);
        for series in &c.series {
            self.render_series(&mut s, series);
        }
        self.render_legend(&mut s);
        s.push_str("</svg>");
        s
    }

    fn render_grid_and_axes(&self, s: &mut String) {
        let c = self.chart;
        let _ = write!(
            s,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"none\" stroke=\"#444\"/>",
            px(self.left),
            px(self.top),
            px(self.right - self.left),
            px(self.bottom - self.top)
        );
        for (y, label) in &c.y_ticks {
            let yp = self.y_px(*y);
            let _ = write!(
                s,
                "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#ddd\"/>",
                px(self.left),
                px(yp),
                px(self.right),
                px(yp)
            );
            let _ = write!(
                s,
                "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" fill=\"#333\">{}</text>",
                px(self.left - 6.0),
                px(yp + 4.0),
                escape(label)
            );
        }
        for (x, label) in &c.x_ticks {
            let Some(xp) = self.x_px(*x) else { continue };
            let _ = write!(
                s,
                "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#444\"/>",
                px(xp),
                px(self.bottom),
                px(xp),
                px(self.bottom + 4.0)
            );
            let _ = write!(
                s,
                "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" fill=\"#333\">{}</text>",
                px(xp),
                px(self.bottom + 16.0),
                escape(label)
            );
        }
        if !c.x_label.is_empty() {
            let _ = write!(
                s,
                "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" fill=\"#333\">{}</text>",
                px((self.left + self.right) / 2.0),
                px(self.bottom + 34.0),
                escape(&c.x_label)
            );
        }
        if !c.y_label.is_empty() {
            let cx = 14.0;
            let cy = (self.top + self.bottom) / 2.0;
            let _ = write!(
                s,
                "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" fill=\"#333\" \
                 transform=\"rotate(-90 {} {})\">{}</text>",
                px(cx),
                px(cy),
                px(cx),
                px(cy),
                escape(&c.y_label)
            );
        }
    }

    fn render_ref_line(&self, s: &mut String) {
        let Some((x, label)) = &self.chart.ref_x else {
            return;
        };
        let Some(xp) = self.x_px(*x) else { return };
        let _ = write!(
            s,
            "<line x1=\"{x}\" y1=\"{}\" x2=\"{x}\" y2=\"{}\" stroke=\"#888\" \
             stroke-dasharray=\"4 3\"/>",
            px(self.top),
            px(self.bottom),
            x = px(xp)
        );
        let _ = write!(
            s,
            "<text x=\"{}\" y=\"{}\" fill=\"#666\" font-size=\"10\">{}</text>",
            px(xp + 3.0),
            px(self.top + 10.0),
            escape(label)
        );
    }

    fn render_series(&self, s: &mut String, series: &Series) {
        let color = escape(&series.color);
        // Error bars under the line.
        for p in &series.points {
            let (Some(lo), Some(hi)) = (p.y_lo, p.y_hi) else {
                continue;
            };
            let Some(xp) = self.x_px(p.x) else { continue };
            let (y1, y2) = (self.y_px(hi), self.y_px(lo));
            let _ = write!(
                s,
                "<line x1=\"{x}\" y1=\"{y1}\" x2=\"{x}\" y2=\"{y2}\" stroke=\"{color}\"/>",
                x = px(xp),
                y1 = px(y1),
                y2 = px(y2),
            );
            for y in [y1, y2] {
                let _ = write!(
                    s,
                    "<line x1=\"{}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"{color}\"/>",
                    px(xp - 3.0),
                    px(xp + 3.0),
                    y = px(y),
                );
            }
        }
        let mut path: Vec<String> = Vec::new();
        for p in &series.points {
            if let Some(xp) = self.x_px(p.x) {
                path.push(format!("{},{}", px(xp), px(self.y_px(p.y))));
            }
        }
        if path.len() > 1 {
            let _ = write!(
                s,
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>",
                path.join(" ")
            );
        }
        for p in &series.points {
            let Some(xp) = self.x_px(p.x) else { continue };
            let _ = write!(
                s,
                "<circle cx=\"{}\" cy=\"{}\" r=\"2.5\" fill=\"{color}\">",
                px(xp),
                px(self.y_px(p.y))
            );
            if let Some(note) = &p.note {
                let _ = write!(s, "<title>{}</title>", escape(note));
            }
            s.push_str("</circle>");
        }
    }

    fn render_legend(&self, s: &mut String) {
        let c = self.chart;
        if c.series.is_empty() {
            return;
        }
        let longest = c.series.iter().map(|s| s.label.len()).max().unwrap_or(0);
        let box_w = 30.0 + longest as f64 * 6.5;
        let box_h = 6.0 + c.series.len() as f64 * 14.0;
        let x0 = self.right - box_w - 6.0;
        let y0 = self.top + 6.0;
        let _ = write!(
            s,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"#fff\" \
             fill-opacity=\"0.85\" stroke=\"#bbb\"/>",
            px(x0),
            px(y0),
            px(box_w),
            px(box_h)
        );
        for (i, series) in c.series.iter().enumerate() {
            let y = y0 + 14.0 + i as f64 * 14.0;
            let _ = write!(
                s,
                "<line x1=\"{}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"{}\" \
                 stroke-width=\"2\"/>",
                px(x0 + 4.0),
                px(x0 + 20.0),
                escape(&series.color),
                y = px(y - 3.0),
            );
            let _ = write!(
                s,
                "<text x=\"{}\" y=\"{y}\" fill=\"#333\">{}</text>",
                px(x0 + 24.0),
                escape(&series.label),
                y = px(y),
            );
        }
    }
}

fn transform(scale: XScale, x: f64) -> Option<f64> {
    match scale {
        XScale::Linear => Some(x),
        XScale::Log10 => (x > 0.0).then(|| x.log10()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> LineChart {
        let mut c = LineChart::new("demo <chart>");
        c.x_label = "error rate (%)".into();
        c.y_label = "success (%)".into();
        c.x_ticks = vec![(0.0, "0".into()), (1.0, "1".into()), (2.0, "2".into())];
        c.y_ticks = vec![
            (0.0, "0".into()),
            (50.0, "50".into()),
            (100.0, "100".into()),
        ];
        c.ref_x = Some((1.0, "ref".into()));
        c.series = vec![
            Series {
                label: "d=1".into(),
                color: "#1b6ca8".into(),
                points: vec![
                    DataPoint::with_bar(0.0, 100.0, 90.0, 100.0),
                    DataPoint::with_bar(1.0, 60.0, 45.0, 74.0),
                    DataPoint::with_bar(2.0, 20.0, 10.0, 35.0),
                ],
            },
            Series {
                label: "d=full".into(),
                color: "#b23a48".into(),
                points: vec![DataPoint::new(0.0, 95.0), DataPoint::new(2.0, 5.0)],
            },
        ];
        c
    }

    /// Minimal well-formedness check: every opened tag is closed (or
    /// self-closed) in LIFO order.
    fn assert_tag_balanced(svg: &str) {
        let mut stack: Vec<String> = Vec::new();
        let mut rest = svg;
        while let Some(open) = rest.find('<') {
            let Some(close) = rest[open..].find('>') else {
                panic!("unterminated tag");
            };
            let tag = &rest[open + 1..open + close];
            rest = &rest[open + close + 1..];
            if let Some(name) = tag.strip_prefix('/') {
                let top = stack.pop().unwrap_or_else(|| panic!("stray </{name}>"));
                assert_eq!(top, name, "mismatched closing tag");
            } else if !tag.ends_with('/') && !tag.starts_with('!') && !tag.starts_with('?') {
                let name: String = tag.chars().take_while(|c| !c.is_whitespace()).collect();
                stack.push(name);
            }
        }
        assert!(stack.is_empty(), "unclosed tags: {stack:?}");
    }

    #[test]
    fn renders_balanced_svg_with_all_elements() {
        let svg = sample_chart().render();
        assert!(svg.starts_with("<svg "));
        assert!(svg.ends_with("</svg>"));
        assert_tag_balanced(&svg);
        assert!(svg.contains("polyline"));
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains("d=full"));
        // Error bars: one vertical + two caps per barred point.
        assert!(svg.matches("<line").count() >= 9);
    }

    #[test]
    fn escapes_markup_in_labels() {
        let svg = sample_chart().render();
        assert!(svg.contains("demo &lt;chart&gt;"));
        assert!(!svg.contains("demo <chart>"));
        assert_eq!(escape(r#"a&b<c>"d'"#), "a&amp;b&lt;c&gt;&quot;d&#39;");
    }

    #[test]
    fn render_is_deterministic() {
        let c = sample_chart();
        assert_eq!(c.render(), c.render());
    }

    #[test]
    fn linear_positions_are_proportional() {
        let c = sample_chart();
        let svg = c.render();
        // x=0 maps to the left edge, x=2 to the right edge, x=1 to the
        // middle: extract the polyline of the second series.
        let frame = Frame::new(&c);
        let x0 = frame.x_px(0.0).unwrap();
        let x1 = frame.x_px(1.0).unwrap();
        let x2 = frame.x_px(2.0).unwrap();
        assert!((x1 - (x0 + x2) / 2.0).abs() < 1e-9);
        assert!(svg.contains(&format!("x1=\"{}\"", super::px(x1)))); // ref line
    }

    #[test]
    fn log_scale_skips_nonpositive_and_spaces_decades_evenly() {
        let mut c = LineChart::new("log");
        c.x_scale = XScale::Log10;
        c.x_ticks = vec![
            (0.0, "0".into()), // unplottable, skipped
            (0.001, "1e-3".into()),
            (0.01, "1e-2".into()),
            (0.1, "1e-1".into()),
        ];
        c.series = vec![Series {
            label: "s".into(),
            color: "#000".into(),
            points: vec![DataPoint::new(0.001, 10.0), DataPoint::new(0.1, 90.0)],
        }];
        let frame = Frame::new(&c);
        assert_eq!(frame.x_px(0.0), None);
        assert_eq!(frame.x_px(-1.0), None);
        let a = frame.x_px(0.001).unwrap();
        let b = frame.x_px(0.01).unwrap();
        let d = frame.x_px(0.1).unwrap();
        assert!(((b - a) - (d - b)).abs() < 1e-9, "decades must be even");
        assert_tag_balanced(&c.render());
    }

    #[test]
    fn degenerate_domains_do_not_panic() {
        let mut c = LineChart::new("empty");
        assert_tag_balanced(&c.render());
        // One single x position.
        c.series = vec![Series {
            label: "s".into(),
            color: "#000".into(),
            points: vec![DataPoint::new(5.0, 50.0)],
        }];
        let svg = c.render();
        assert_tag_balanced(&svg);
        assert!(!svg.contains("NaN"));
        // Zero-height y range.
        c.y_min = 50.0;
        c.y_max = 50.0;
        assert!(!c.render().contains("NaN"));
    }

    #[test]
    fn notes_become_tooltips() {
        let mut c = LineChart::new("t");
        c.series = vec![Series {
            label: "s".into(),
            color: "#000".into(),
            points: vec![DataPoint {
                x: 1.0,
                y: 2.0,
                note: Some("12/16 ok".into()),
                ..DataPoint::default()
            }],
        }];
        let svg = c.render();
        assert!(svg.contains("<title>12/16 ok</title>"));
        assert_tag_balanced(&svg);
    }
}
