//! RAII span timers.

use crate::histogram::Histogram;
use std::time::Instant;

/// An RAII timer: created via [`Histogram::span`] (or
/// [`Histogram::span_detail`]), records elapsed nanoseconds into its
/// histogram when dropped. When telemetry is off (or below the required
/// mode) the span holds nothing and drop is free — `Instant::now` is
/// never called.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    active: Option<(&'static Histogram, Instant)>,
}

impl Span {
    #[inline]
    pub(crate) fn enter(hist: &'static Histogram, active: bool) -> Self {
        Self {
            active: active.then(|| (hist, Instant::now())),
        }
    }

    /// An inert span (never records).
    pub fn disabled() -> Self {
        Self { active: None }
    }

    /// Elapsed nanoseconds so far, saturated to `u64` (0 if inactive).
    pub fn elapsed_ns(&self) -> u64 {
        self.active
            .map(|(_, start)| u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some((hist, start)) = self.active.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hist.record_always(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{exclusive_test_lock, histogram, set_mode, Mode};

    #[test]
    fn span_records_on_drop() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        let h = histogram("test.span.h");
        h.reset();
        {
            let _s = h.span();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(
            h.summarize().min >= 1_000_000,
            "span under 1ms: {:?}",
            h.summarize()
        );
        set_mode(Mode::Off);
    }

    #[test]
    fn detail_span_is_inert_in_summary_mode() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        let h = histogram("test.span.detail");
        h.reset();
        drop(h.span_detail());
        assert_eq!(h.count(), 0);
        set_mode(Mode::Detail);
        drop(h.span_detail());
        assert_eq!(h.count(), 1);
        set_mode(Mode::Off);
    }

    #[test]
    fn disabled_span_never_records() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        let h = histogram("test.span.off");
        h.reset();
        set_mode(Mode::Off);
        drop(h.span());
        set_mode(Mode::Summary);
        assert_eq!(h.count(), 0);
        set_mode(Mode::Off);
    }
}
