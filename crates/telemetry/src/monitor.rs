//! Live run monitoring: a background sampler that turns the metric
//! registry into a bounded time-series ring, plus an atomically written
//! `status.json` heartbeat.
//!
//! The monitor is process-global, like the registry it samples. A run
//! that wants live observability calls [`start`] with a
//! [`MonitorConfig`]; a sampler thread then, every
//! [`MonitorConfig::interval`]:
//!
//! 1. refreshes the resource gauges ([`sample_resource_gauges`]),
//! 2. captures a delta [`sample`](timeline) of every registered
//!    counter/gauge/histogram into a bounded in-memory ring
//!    ([`TIMELINE_SCHEMA`], oldest samples overwritten and counted), and
//! 3. rebuilds the heartbeat through the configured
//!    [`MonitorConfig::provider`] and atomically rewrites
//!    `status.json` (write-to-temp + rename), so a crashed run always
//!    leaves its last published state on disk.
//!
//! When the monitor is *not* running — the common case — every hook on
//! the hot path ([`active`], [`publish_status_with`]) is exactly one
//! relaxed atomic load: no lock, no allocation, no closure call. The
//! `no_alloc` test pins that bar.

use crate::json::Json;
use crate::registry::{self, MetricValue, Snapshot};
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Schema identifier of the timeline document served as `metrics.json`.
pub const TIMELINE_SCHEMA: &str = "qfab.timeline.v1";

/// Default sampling interval.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(250);

/// Default timeline ring capacity (~4 minutes at the default interval).
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// Builds the current heartbeat document on demand.
pub type StatusProvider = Box<dyn Fn() -> Json + Send + Sync>;

/// Configuration for [`start`].
pub struct MonitorConfig {
    /// Sampling interval of the background thread.
    pub interval: Duration,
    /// Bounded timeline length; the oldest sample is dropped (and
    /// counted) once full.
    pub ring_capacity: usize,
    /// Where to atomically write the heartbeat, typically
    /// `<store>/status.json`. `None` keeps heartbeats in memory only.
    pub status_path: Option<PathBuf>,
    /// Where to atomically write the timeline ring as a
    /// [`TIMELINE_SCHEMA`] document on every sampler tick (and on
    /// [`stop`]). `None` — the default — keeps the timeline in memory
    /// only, where `repro --watch` serves it as `/metrics.json`;
    /// federated workers set this so the service can aggregate shard
    /// timelines without talking to worker processes.
    pub timeline_path: Option<PathBuf>,
    /// Heartbeat builder, called on every publish. `None` disables
    /// heartbeats (the timeline still runs).
    pub provider: Option<StatusProvider>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            interval: DEFAULT_INTERVAL,
            ring_capacity: DEFAULT_RING_CAPACITY,
            status_path: None,
            timeline_path: None,
            provider: None,
        }
    }
}

/// One timeline entry: counter/histogram-count deltas since the
/// previous sample, gauge last-values, at `t_ms` since monitor start.
struct Sample {
    t_ms: u64,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64)>,
    histograms: Vec<(String, u64)>,
}

struct Inner {
    interval: Duration,
    capacity: usize,
    status_path: Option<PathBuf>,
    timeline_path: Option<PathBuf>,
    provider: Option<StatusProvider>,
    started: Instant,
    samples: VecDeque<Sample>,
    dropped: u64,
    prev: Snapshot,
    status: Option<String>,
    stop: bool,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SAMPLER: Mutex<Option<std::thread::JoinHandle<()>>> = Mutex::new(None);

fn shared() -> &'static (Mutex<Option<Inner>>, Condvar) {
    static SHARED: OnceLock<(Mutex<Option<Inner>>, Condvar)> = OnceLock::new();
    SHARED.get_or_init(|| (Mutex::new(None), Condvar::new()))
}

fn lock_inner() -> MutexGuard<'static, Option<Inner>> {
    shared().0.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether a monitor is running. One relaxed atomic load — safe to call
/// from any hot path.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Publishes a heartbeat built by `f`, but only while a monitor is
/// running: when inactive this is one relaxed atomic load and the
/// closure is never called (zero allocations — see `no_alloc.rs`).
#[inline]
pub fn publish_status_with<F: FnOnce() -> Json>(f: F) {
    if !active() {
        return;
    }
    publish_status(f());
}

/// Publishes an explicit heartbeat document: stashes its encoding for
/// [`status_json`] and atomically rewrites the status file, if one is
/// configured. A no-op when the monitor is not running.
pub fn publish_status(status: Json) {
    let mut guard = lock_inner();
    if let Some(inner) = guard.as_mut() {
        set_status(inner, status);
    }
}

/// Rebuilds the heartbeat through the configured provider and publishes
/// it (memory + disk). A no-op without a running monitor or provider.
pub fn publish_now() {
    let mut guard = lock_inner();
    if let Some(inner) = guard.as_mut() {
        write_status(inner);
    }
}

fn set_status(inner: &mut Inner, status: Json) {
    let text = status.encode_pretty();
    if let Some(path) = &inner.status_path {
        if let Err(e) = write_atomic(path, &text) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
    inner.status = Some(text);
}

fn write_status(inner: &mut Inner) {
    let Some(provider) = inner.provider.take() else {
        return;
    };
    let status = provider();
    inner.provider = Some(provider);
    set_status(inner, status);
}

/// Write-to-temp + rename so readers (and crash post-mortems) only ever
/// see a complete document.
fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

fn take_sample(inner: &mut Inner) {
    let snap = registry::snapshot();
    let t_ms = inner.started.elapsed().as_millis() as u64;
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (name, value) in &snap.entries {
        match value {
            MetricValue::Counter(c) => {
                // Saturating delta: `registry::reset()` between panels
                // legitimately rewinds counters.
                let prev = inner.prev.counter(name).unwrap_or(0);
                counters.push((name.clone(), c.saturating_sub(prev)));
            }
            MetricValue::Gauge(last, _high) => gauges.push((name.clone(), *last)),
            MetricValue::Histogram(h) => {
                let prev = inner.prev.histogram(name).map(|p| p.count).unwrap_or(0);
                histograms.push((name.clone(), h.count.saturating_sub(prev)));
            }
        }
    }
    if inner.samples.len() >= inner.capacity {
        inner.samples.pop_front();
        inner.dropped += 1;
    }
    inner.samples.push_back(Sample {
        t_ms,
        counters,
        gauges,
        histograms,
    });
    inner.prev = snap;
}

/// Rewrites the configured timeline file from the current ring. A
/// no-op without a `timeline_path`.
fn write_timeline(inner: &Inner) {
    let Some(path) = &inner.timeline_path else {
        return;
    };
    let text = timeline_doc(inner).encode_pretty();
    if let Err(e) = write_atomic(path, &text) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

fn sampler_loop() {
    let (lock, cv) = shared();
    let mut guard = lock.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let Some(inner) = guard.as_ref() else { return };
        if inner.stop {
            return;
        }
        let interval = inner.interval;
        let (g, _timeout) = cv
            .wait_timeout(guard, interval)
            .unwrap_or_else(|e| e.into_inner());
        guard = g;
        let Some(inner) = guard.as_mut() else { return };
        if inner.stop {
            return;
        }
        sample_resource_gauges();
        take_sample(inner);
        write_status(inner);
        write_timeline(inner);
    }
}

/// Starts the global monitor and its sampler thread. Returns `false`
/// (doing nothing) if one is already running. The first heartbeat and
/// timeline sample land before this returns, so even an immediately
/// crashed run leaves a readable `status.json`.
pub fn start(config: MonitorConfig) -> bool {
    {
        let mut guard = lock_inner();
        if guard.is_some() {
            return false;
        }
        let mut inner = Inner {
            interval: config.interval.max(Duration::from_millis(10)),
            capacity: config.ring_capacity.max(2),
            status_path: config.status_path,
            timeline_path: config.timeline_path,
            provider: config.provider,
            started: Instant::now(),
            samples: VecDeque::new(),
            dropped: 0,
            prev: Snapshot::default(),
            stop: false,
            status: None,
        };
        sample_resource_gauges();
        take_sample(&mut inner);
        write_status(&mut inner);
        write_timeline(&inner);
        *guard = Some(inner);
    }
    ACTIVE.store(true, Ordering::Relaxed);
    let handle = std::thread::Builder::new()
        .name("qfab-monitor".into())
        .spawn(sampler_loop)
        .ok();
    *SAMPLER.lock().unwrap_or_else(|e| e.into_inner()) = handle;
    true
}

/// Stops the sampler thread (joining it), takes one final sample,
/// publishes one final heartbeat, and tears the monitor down.
pub fn stop() {
    {
        let mut guard = lock_inner();
        let Some(inner) = guard.as_mut() else { return };
        inner.stop = true;
        shared().1.notify_all();
    }
    let handle = SAMPLER.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(h) = handle {
        let _ = h.join();
    }
    ACTIVE.store(false, Ordering::Relaxed);
    let mut guard = lock_inner();
    if let Some(inner) = guard.as_mut() {
        sample_resource_gauges();
        take_sample(inner);
        write_status(inner);
        write_timeline(inner);
    }
    *guard = None;
}

/// The latest heartbeat's exact encoding (the bytes `status.json`
/// holds), or `None` when no monitor is running or nothing has been
/// published yet.
pub fn status_json() -> Option<String> {
    lock_inner().as_ref().and_then(|i| i.status.clone())
}

/// Encodes the timeline ring as a [`TIMELINE_SCHEMA`] document, or
/// `None` when no monitor is running.
pub fn timeline_json() -> Option<String> {
    let guard = lock_inner();
    let inner = guard.as_ref()?;
    Some(timeline_doc(inner).encode_pretty())
}

/// Builds the [`TIMELINE_SCHEMA`] document for the current ring.
fn timeline_doc(inner: &Inner) -> Json {
    let samples: Vec<Json> = inner
        .samples
        .iter()
        .map(|s| {
            let obj = |pairs: &[(String, u64)]| {
                Json::Obj(
                    pairs
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::U64(*v)))
                        .collect(),
                )
            };
            Json::Obj(vec![
                ("t_ms".into(), Json::U64(s.t_ms)),
                ("counters".into(), obj(&s.counters)),
                ("gauges".into(), obj(&s.gauges)),
                ("histograms".into(), obj(&s.histograms)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str(TIMELINE_SCHEMA.into())),
        (
            "interval_ms".into(),
            Json::U64(inner.interval.as_millis() as u64),
        ),
        ("capacity".into(), Json::U64(inner.capacity as u64)),
        ("dropped".into(), Json::U64(inner.dropped)),
        ("samples".into(), Json::Arr(samples)),
    ])
}

/// Takes one timeline sample immediately (in addition to the periodic
/// ones). A no-op without a running monitor.
pub fn sample_now() {
    let mut guard = lock_inner();
    if let Some(inner) = guard.as_mut() {
        take_sample(inner);
    }
}

/// Refreshes the process resource gauges from the OS: `proc.rss.bytes`
/// (current resident set) and `proc.rss_peak.bytes` (high-water mark),
/// parsed from `/proc/self/status` on Linux. On other platforms — or
/// with telemetry off — the gauges are simply absent.
pub fn sample_resource_gauges() {
    if !crate::enabled() {
        return;
    }
    #[cfg(target_os = "linux")]
    {
        let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
            return;
        };
        if let Some(kb) = proc_field_kb(&text, "VmRSS:") {
            registry::gauge("proc.rss.bytes").set(kb * 1024);
        }
        if let Some(kb) = proc_field_kb(&text, "VmHWM:") {
            registry::gauge("proc.rss_peak.bytes").set(kb * 1024);
        }
    }
}

/// Extracts the kB figure of one `/proc/self/status` line.
#[cfg(target_os = "linux")]
fn proc_field_kb(text: &str, key: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.starts_with(key))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, exclusive_test_lock, set_mode, Mode};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qfab_monitor_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lifecycle_publishes_heartbeats_and_timeline() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        crate::reset();
        let dir = tmp_dir("lifecycle");
        let status_path = dir.join("status.json");
        assert!(!active());
        assert!(start(MonitorConfig {
            interval: Duration::from_millis(20),
            status_path: Some(status_path.clone()),
            provider: Some(Box::new(|| Json::Obj(vec![(
                "schema".into(),
                Json::Str("qfab.status.v1".into())
            )]))),
            ..MonitorConfig::default()
        }));
        assert!(active());
        // A second start is refused while one is running.
        assert!(!start(MonitorConfig::default()));
        // The initial heartbeat landed on disk before start() returned.
        let on_disk = std::fs::read_to_string(&status_path).unwrap();
        assert!(on_disk.contains("qfab.status.v1"));
        assert_eq!(status_json().unwrap(), on_disk);

        counter("monitor.test.events").add(3);
        sample_now();
        let timeline = timeline_json().unwrap();
        let doc = Json::parse(&timeline).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(TIMELINE_SCHEMA)
        );
        let Some(Json::Arr(samples)) = doc.get("samples") else {
            panic!("samples missing");
        };
        assert!(samples.len() >= 2, "initial + explicit sample");
        let last = samples.last().unwrap();
        assert_eq!(
            last.get("counters")
                .and_then(|c| c.get("monitor.test.events"))
                .and_then(Json::as_u64),
            Some(3),
            "counter delta since previous sample"
        );

        stop();
        assert!(!active());
        assert!(status_json().is_none(), "torn down");
        // The final heartbeat survives on disk.
        assert!(status_path.is_file());
        set_mode(Mode::Off);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timeline_path_persists_the_ring_on_disk() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        crate::reset();
        let dir = tmp_dir("timeline_path");
        let timeline_path = dir.join("timeline.json");
        assert!(start(MonitorConfig {
            interval: Duration::from_secs(3600),
            timeline_path: Some(timeline_path.clone()),
            ..MonitorConfig::default()
        }));
        // The initial sample landed on disk before start() returned.
        let on_disk = Json::parse(&std::fs::read_to_string(&timeline_path).unwrap()).unwrap();
        assert_eq!(
            on_disk.get("schema").and_then(Json::as_str),
            Some(TIMELINE_SCHEMA)
        );
        counter("monitor.test.timeline_path").add(5);
        stop();
        // stop() rewrote the file with the final sample included.
        let on_disk = Json::parse(&std::fs::read_to_string(&timeline_path).unwrap()).unwrap();
        let Some(Json::Arr(samples)) = on_disk.get("samples") else {
            panic!("samples missing");
        };
        assert!(samples.len() >= 2, "initial + final sample");
        assert_eq!(
            samples
                .last()
                .unwrap()
                .get("counters")
                .and_then(|c| c.get("monitor.test.timeline_path"))
                .and_then(Json::as_u64),
            Some(5)
        );
        set_mode(Mode::Off);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        crate::reset();
        assert!(start(MonitorConfig {
            interval: Duration::from_secs(3600),
            ring_capacity: 4,
            ..MonitorConfig::default()
        }));
        for _ in 0..10 {
            sample_now();
        }
        let doc = Json::parse(&timeline_json().unwrap()).unwrap();
        let Some(Json::Arr(samples)) = doc.get("samples") else {
            panic!("samples missing");
        };
        assert_eq!(samples.len(), 4);
        // 1 initial + 10 explicit = 11 taken, 4 kept.
        assert_eq!(doc.get("dropped").and_then(Json::as_u64), Some(7));
        stop();
        set_mode(Mode::Off);
    }

    #[test]
    fn counter_deltas_saturate_across_registry_reset() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        crate::reset();
        counter("monitor.test.saturate").add(100);
        assert!(start(MonitorConfig {
            interval: Duration::from_secs(3600),
            ..MonitorConfig::default()
        }));
        crate::reset(); // per-panel isolation rewinds every counter
        counter("monitor.test.saturate").add(2);
        sample_now();
        let doc = Json::parse(&timeline_json().unwrap()).unwrap();
        let Some(Json::Arr(samples)) = doc.get("samples") else {
            panic!("samples missing");
        };
        let last = samples.last().unwrap();
        assert_eq!(
            last.get("counters")
                .and_then(|c| c.get("monitor.test.saturate"))
                .and_then(Json::as_u64),
            Some(0),
            "a rewound counter must clamp to zero, not wrap"
        );
        stop();
        set_mode(Mode::Off);
    }

    #[test]
    fn publish_status_with_skips_closure_when_inactive() {
        let _guard = exclusive_test_lock();
        assert!(!active());
        publish_status_with(|| unreachable!("must not run while inactive"));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn proc_status_parses_on_linux() {
        let text = std::fs::read_to_string("/proc/self/status").unwrap();
        let rss = proc_field_kb(&text, "VmRSS:").expect("VmRSS present");
        let peak = proc_field_kb(&text, "VmHWM:").expect("VmHWM present");
        assert!(rss > 0 && peak >= rss);
    }
}
