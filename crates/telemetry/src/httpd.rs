//! A minimal HTTP/1.1 server over `std::net` — just enough protocol
//! for `repro --watch` to serve `status.json`, the metrics timeline,
//! and the live dashboard, and for `repro serve` to accept sweep jobs.
//!
//! Deliberately not a web framework: `GET` and bounded-body `POST`
//! only, one handler for the whole path space, `Connection: close` on
//! every response, a small connection cap (excess connections get `503`
//! immediately rather than queueing behind the sweep), and a
//! per-connection read timeout so a stalled client can never pin a
//! thread. `GET` requests are parsed from the request line alone;
//! `POST` requests read the full head, honour `Content-Length` up to
//! [`MAX_BODY_BYTES`], and reject anything larger with `413` before
//! buffering it. Whether a request mutates anything is entirely the
//! handler's business — this layer only frames bytes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Longest request head accepted before answering `431`.
pub const MAX_REQUEST_BYTES: usize = 4096;

/// Longest request body accepted before answering `413`.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// Connections served concurrently before new ones get `503`.
pub const DEFAULT_MAX_CONNECTIONS: usize = 8;

/// Per-connection read timeout.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(2);

/// The request methods this server speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// A read: parsed from the request line alone.
    Get,
    /// A write: the head is read in full and the body buffered up to
    /// [`MAX_BODY_BYTES`].
    Post,
}

/// One parsed request, as handed to the [`Handler`].
#[derive(Clone, Debug)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The target path (always starts with `/`).
    pub path: String,
    /// The request body (empty for `GET`).
    pub body: Vec<u8>,
}

impl Request {
    /// A bodiless `GET` for `path` — handy in handler unit tests.
    pub fn get(path: impl Into<String>) -> Self {
        Self {
            method: Method::Get,
            path: path.into(),
            body: Vec::new(),
        }
    }

    /// A `POST` to `path` carrying `body`.
    pub fn post(path: impl Into<String>, body: impl Into<Vec<u8>>) -> Self {
        Self {
            method: Method::Post,
            path: path.into(),
            body: body.into(),
        }
    }
}

/// A response the handler hands back for one request.
pub struct Response {
    /// HTTP status code (200, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// `Cache-Control` header value, when one should be sent.
    pub cache_control: Option<&'static str>,
    /// `Allow` header value (sent with `405` responses).
    pub allow: Option<&'static str>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` JSON response. JSON endpoints are live state, so the
    /// payload is marked uncacheable and its charset explicit.
    pub fn json(body: impl Into<Vec<u8>>) -> Self {
        Self {
            status: 200,
            content_type: "application/json; charset=utf-8",
            cache_control: Some("no-store"),
            allow: None,
            body: body.into(),
        }
    }

    /// A `200 OK` HTML response.
    pub fn html(body: impl Into<Vec<u8>>) -> Self {
        Self {
            status: 200,
            content_type: "text/html; charset=utf-8",
            cache_control: None,
            allow: None,
            body: body.into(),
        }
    }

    /// A `200 OK` plain-text response.
    pub fn text(body: impl Into<Vec<u8>>) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            cache_control: None,
            allow: None,
            body: body.into(),
        }
    }

    /// A `404 Not Found` response.
    pub fn not_found() -> Self {
        Self {
            status: 404,
            ..Self::text(b"not found\n".to_vec())
        }
    }

    /// A `400 Bad Request` response with a reason line.
    pub fn bad_request(reason: impl Into<Vec<u8>>) -> Self {
        Self {
            status: 400,
            ..Self::text(reason)
        }
    }

    /// A `405 Method Not Allowed` response advertising what is.
    pub fn method_not_allowed(allow: &'static str) -> Self {
        Self {
            status: 405,
            allow: Some(allow),
            ..Self::text(b"method not allowed\n".to_vec())
        }
    }

    /// A `503 Service Unavailable` response.
    pub fn unavailable() -> Self {
        Self {
            status: 503,
            ..Self::text(b"busy\n".to_vec())
        }
    }
}

/// Why a request was rejected before reaching the handler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// Not a parseable HTTP/1.x request, or the connection died before
    /// the advertised body arrived.
    Malformed,
    /// Request head exceeded [`MAX_REQUEST_BYTES`].
    TooLarge,
    /// A method other than `GET`/`POST`.
    Method,
    /// `Content-Length` exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge,
}

impl RequestError {
    fn status(self) -> u16 {
        match self {
            RequestError::Malformed => 400,
            RequestError::TooLarge => 431,
            RequestError::Method => 405,
            RequestError::BodyTooLarge => 413,
        }
    }
}

/// Parses a request line, returning the method and target path.
///
/// Accepts exactly `GET|POST <path> HTTP/1.x`; anything else is
/// rejected with the appropriate [`RequestError`] and never panics,
/// whatever the bytes.
pub fn parse_request_line(head: &[u8]) -> Result<(Method, &str), RequestError> {
    let Some(eol) = head.iter().position(|&b| b == b'\n') else {
        // No complete request line: either the client sent a huge one
        // or the connection died mid-line.
        return Err(if head.len() >= MAX_REQUEST_BYTES {
            RequestError::TooLarge
        } else {
            RequestError::Malformed
        });
    };
    let line = std::str::from_utf8(&head[..eol])
        .map_err(|_| RequestError::Malformed)?
        .trim_end_matches('\r');
    let mut parts = line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(RequestError::Malformed);
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed);
    }
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        _ => return Err(RequestError::Method),
    };
    if !path.starts_with('/') {
        return Err(RequestError::Malformed);
    }
    Ok((method, path))
}

/// Extracts the `Content-Length` of a complete request head (0 when
/// the header is absent). A value that does not parse, or repeats with
/// disagreeing values, is [`RequestError::Malformed`].
pub fn content_length(head: &[u8]) -> Result<usize, RequestError> {
    let mut found: Option<usize> = None;
    for line in head.split(|&b| b == b'\n').skip(1) {
        let Ok(line) = std::str::from_utf8(line) else {
            continue;
        };
        let Some((name, value)) = line.trim_end_matches('\r').split_once(':') else {
            continue;
        };
        if !name.trim().eq_ignore_ascii_case("content-length") {
            continue;
        }
        let value: usize = value.trim().parse().map_err(|_| RequestError::Malformed)?;
        if found.is_some_and(|prior| prior != value) {
            return Err(RequestError::Malformed);
        }
        found = Some(value);
    }
    Ok(found.unwrap_or(0))
}

/// Byte offset just past the blank line ending a request head, if the
/// head is complete.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

/// Reads one request off the stream: request line only for `GET`, full
/// head plus a `Content-Length`-bounded body for `POST`.
fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    // Phase 1: the request line — all a GET needs, so reads stay on the
    // old single-line fast path and never wait for a blank line.
    while !buf.contains(&b'\n') && buf.len() < MAX_REQUEST_BYTES {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let (method, path) = parse_request_line(&buf)?;
    let path = path.to_string();
    if method == Method::Get {
        return Ok(Request {
            method,
            path,
            body: Vec::new(),
        });
    }
    // Phase 2 (POST): the full head, to find Content-Length.
    let end = loop {
        if let Some(end) = head_end(&buf) {
            break end;
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            return Err(RequestError::TooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(n) if n > 0 => buf.extend_from_slice(&chunk[..n]),
            _ => return Err(RequestError::Malformed),
        }
    };
    let want = content_length(&buf[..end])?;
    if want > MAX_BODY_BYTES {
        return Err(RequestError::BodyTooLarge);
    }
    // Phase 3: the body — whatever rode along with the head, then reads
    // until the advertised length is in hand.
    let mut body = buf[end..].to_vec();
    while body.len() < want {
        match stream.read(&mut chunk) {
            Ok(n) if n > 0 => body.extend_from_slice(&chunk[..n]),
            _ => return Err(RequestError::Malformed),
        }
    }
    body.truncate(want);
    Ok(Request { method, path, body })
}

/// Maps a [`Request`] to a [`Response`].
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running server; shuts down on [`HttpServer::shutdown`] or drop.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    /// In-flight responses finish on their own threads.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves `handler` at `addr` with default limits
/// ([`DEFAULT_MAX_CONNECTIONS`], [`DEFAULT_READ_TIMEOUT`]).
pub fn serve(addr: impl ToSocketAddrs, handler: Handler) -> std::io::Result<HttpServer> {
    serve_with(addr, handler, DEFAULT_MAX_CONNECTIONS, DEFAULT_READ_TIMEOUT)
}

/// Serves `handler` at `addr` with explicit connection-cap and
/// read-timeout limits. Binding `port 0` picks a free port; read it
/// back with [`HttpServer::local_addr`].
pub fn serve_with(
    addr: impl ToSocketAddrs,
    handler: Handler,
    max_connections: usize,
    read_timeout: Duration,
) -> std::io::Result<HttpServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let shutdown_flag = Arc::clone(&shutdown);
    let live = Arc::new(AtomicUsize::new(0));
    let accept = std::thread::Builder::new()
        .name("qfab-httpd".into())
        .spawn(move || {
            accept_loop(
                listener,
                handler,
                shutdown_flag,
                live,
                max_connections.max(1),
                read_timeout,
            )
        })?;
    Ok(HttpServer {
        addr,
        shutdown,
        accept: Some(accept),
    })
}

fn accept_loop(
    listener: TcpListener,
    handler: Handler,
    shutdown: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    max_connections: usize,
    read_timeout: Duration,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if live.load(Ordering::Relaxed) >= max_connections {
                    // Over the cap: answer 503 inline rather than
                    // spawning. Drain the request head first — closing
                    // with unread bytes in the receive buffer would RST
                    // the connection and the client might never see the
                    // 503.
                    let mut stream = stream;
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                    let mut drain = [0u8; 512];
                    let _ = stream.read(&mut drain);
                    let _ = write_response(&mut stream, &Response::unavailable());
                    continue;
                }
                live.fetch_add(1, Ordering::Relaxed);
                let handler = Arc::clone(&handler);
                let conn_live = Arc::clone(&live);
                let spawned = std::thread::Builder::new()
                    .name("qfab-httpd-conn".into())
                    .spawn(move || {
                        handle_connection(stream, &handler, read_timeout);
                        conn_live.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    live.fetch_sub(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, handler: &Handler, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let response = match read_request(&mut stream) {
        Ok(request) => handler(&request),
        Err(e) => {
            // Drain (bounded) whatever the client is still sending
            // before answering: closing with unread bytes pending RSTs
            // the connection and the client may never see the error
            // status — an oversized head would look like a dropped
            // connection instead of a 431.
            let mut drained = 0usize;
            let mut drain = [0u8; 1024];
            while drained < 64 * 1024 {
                match stream.read(&mut drain) {
                    Ok(n) if n > 0 => drained += n,
                    _ => break,
                }
            }
            Response {
                status: e.status(),
                // An unknown method can be retried with one we speak.
                allow: (e == RequestError::Method).then_some("GET, POST"),
                ..Response::text(format!("{e:?}\n"))
            }
        }
    };
    let _ = write_response(&mut stream, &response);
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
    );
    if let Some(cc) = response.cache_control {
        let _ = write!(head, "Cache-Control: {cc}\r\n");
    }
    // A 405 must name what is allowed, even if the handler forgot.
    match response.allow {
        Some(allow) => {
            let _ = write!(head, "Allow: {allow}\r\n");
        }
        None if response.status == 405 => head.push_str("Allow: GET\r\n"),
        None => {}
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn parse_accepts_plain_get_and_post() {
        assert_eq!(
            parse_request_line(b"GET /status.json HTTP/1.1\r\nHost: x\r\n\r\n"),
            Ok((Method::Get, "/status.json"))
        );
        assert_eq!(
            parse_request_line(b"GET / HTTP/1.0\n"),
            Ok((Method::Get, "/"))
        );
        assert_eq!(
            parse_request_line(b"POST /jobs HTTP/1.1\r\n"),
            Ok((Method::Post, "/jobs"))
        );
    }

    #[test]
    fn parse_rejects_malformed_heads_without_panicking() {
        for head in [
            &b""[..],
            b"\n",
            b"GET\n",
            b"GET /x\n",
            b"GET /x HTTP/1.1 extra\n",
            b"GET /x SMTP/1.1\n",
            b"GET x HTTP/1.1\n",
            b"\xff\xfe\xfd GET / HTTP/1.1\n",
            b"no newline yet",
        ] {
            match parse_request_line(head) {
                Err(RequestError::Malformed) => {}
                other => panic!("{head:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn parse_rejects_unknown_methods() {
        for head in [&b"PUT /x HTTP/1.1\n"[..], b"DELETE / HTTP/1.1\n"] {
            assert_eq!(parse_request_line(head), Err(RequestError::Method));
        }
    }

    #[test]
    fn parse_rejects_oversized_heads() {
        let huge = vec![b'A'; MAX_REQUEST_BYTES + 10];
        assert_eq!(parse_request_line(&huge), Err(RequestError::TooLarge));
    }

    #[test]
    fn content_length_parses_absent_present_and_conflicting() {
        assert_eq!(content_length(b"POST / HTTP/1.1\r\n\r\n"), Ok(0));
        assert_eq!(
            content_length(b"POST / HTTP/1.1\r\nContent-Length: 12\r\n\r\n"),
            Ok(12)
        );
        // Case-insensitive, tolerant of spacing.
        assert_eq!(
            content_length(b"POST / HTTP/1.1\ncontent-length:7\n\n"),
            Ok(7)
        );
        assert_eq!(
            content_length(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(RequestError::Malformed)
        );
        assert_eq!(
            content_length(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\n"),
            Err(RequestError::Malformed)
        );
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let status = text
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
        (status, body.to_string())
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let status = text
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let payload = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
        (status, payload.to_string())
    }

    #[test]
    fn serves_routes_and_errors_end_to_end() {
        let handler: Handler = Arc::new(|req| match req.path.as_str() {
            "/ok" => Response::text("fine\n"),
            _ => Response::not_found(),
        });
        let mut server = serve("127.0.0.1:0", handler).unwrap();
        let addr = server.local_addr();
        assert_eq!(get(addr, "/ok"), (200, "fine\n".into()));
        assert_eq!(get(addr, "/nope").0, 404);

        // An unknown method gets 405 with an Allow header.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "DELETE /ok HTTP/1.1\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 405"));
        assert!(text.contains("Allow: GET, POST"));

        // Garbage gets 400, not a panic or a hang.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"\x01\x02\x03\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 400"));

        server.shutdown();
        // After shutdown the port stops answering.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn post_bodies_reach_the_handler_intact() {
        let handler: Handler = Arc::new(|req| match (req.method, req.path.as_str()) {
            (Method::Post, "/echo") => {
                let mut body = b"got: ".to_vec();
                body.extend_from_slice(&req.body);
                Response::text(body)
            }
            (Method::Get, _) => Response::method_not_allowed("POST"),
            _ => Response::not_found(),
        });
        let mut server = serve("127.0.0.1:0", handler).unwrap();
        let addr = server.local_addr();
        assert_eq!(
            post(addr, "/echo", r#"{"grid":["fig1a"]}"#),
            (200, r#"got: {"grid":["fig1a"]}"#.into())
        );
        // Empty body is a valid POST.
        assert_eq!(post(addr, "/echo", ""), (200, "got: ".into()));
        // A handler-level 405 carries its advertised Allow.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /echo HTTP/1.1\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 405"));
        assert!(text.contains("Allow: POST"));
        server.shutdown();
    }

    #[test]
    fn oversized_post_bodies_get_413_without_buffering() {
        let handler: Handler = Arc::new(|_| Response::text("never\n"));
        let mut server = serve("127.0.0.1:0", handler).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Advertise an over-cap body; the server must answer from the
        // header alone, before any body bytes are sent.
        write!(
            stream,
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 413"), "{text}");
        server.shutdown();
    }

    #[test]
    fn json_responses_carry_charset_and_no_store_headers() {
        let handler: Handler = Arc::new(|req| match req.path.as_str() {
            "/status.json" => Response::json(b"{}".to_vec()),
            _ => Response::not_found(),
        });
        let mut server = serve("127.0.0.1:0", handler).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /status.json HTTP/1.1\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(
            text.contains("Content-Type: application/json; charset=utf-8"),
            "{text}"
        );
        assert!(text.contains("Cache-Control: no-store"), "{text}");
        server.shutdown();
    }

    #[test]
    fn slowloris_partial_requests_hit_the_read_timeout_not_a_hang() {
        let handler: Handler = Arc::new(|_| Response::text("never\n"));
        let timeout = Duration::from_millis(300);
        let mut server = serve_with("127.0.0.1:0", handler, 4, timeout).unwrap();
        let addr = server.local_addr();
        // Dribble out a partial request line and then go silent — the
        // classic slowloris shape. The connection must be answered (400
        // from the truncated head) once the per-connection read timeout
        // fires, not held open indefinitely.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /slowl").unwrap();
        let started = std::time::Instant::now();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let elapsed = started.elapsed();
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        assert!(
            elapsed >= Duration::from_millis(200),
            "answered before the read timeout could have fired: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "slowloris connection effectively hung: {elapsed:?}"
        );
        // The server is still healthy for well-formed clients.
        assert_eq!(get(addr, "/ok").0, 200);
        server.shutdown();
    }

    #[test]
    fn oversized_header_lines_get_431_end_to_end() {
        let handler: Handler = Arc::new(|_| Response::text("never\n"));
        let mut server = serve("127.0.0.1:0", handler).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        // One request line longer than the whole head budget, never
        // terminated — the server must stop buffering at the cap and
        // answer 431 instead of reading forever.
        let huge = vec![b'A'; MAX_REQUEST_BYTES + 512];
        stream.write_all(&huge).unwrap();
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 431"), "{text}");
        assert!(text.contains("Request Header Fields Too Large"), "{text}");
        server.shutdown();
    }

    #[test]
    fn connection_cap_answers_503_instead_of_queueing() {
        // A handler that blocks until released, pinning its connection.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = std::sync::Mutex::new(release_rx);
        let handler: Handler = Arc::new(move |req| {
            if req.path == "/slow" {
                let _ = release_rx.lock().unwrap().recv();
                Response::text("slow\n")
            } else {
                Response::not_found()
            }
        });
        let mut server = serve_with("127.0.0.1:0", handler, 1, Duration::from_secs(5)).unwrap();
        let addr = server.local_addr();

        // Occupy the single slot.
        let mut slow = TcpStream::connect(addr).unwrap();
        write!(slow, "GET /slow HTTP/1.1\r\n\r\n").unwrap();
        // Wait until the connection is actually being handled: the next
        // request must see a 503 once the slot is taken.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut saw_503 = false;
        while std::time::Instant::now() < deadline {
            let (status, _) = get(addr, "/probe");
            if status == 503 {
                saw_503 = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(saw_503, "over-cap connection should get 503");

        // Release the slow handler; its response completes, and the
        // slot frees up for normal service again.
        release_tx.send(()).unwrap();
        let mut text = String::new();
        slow.read_to_string(&mut text).unwrap();
        assert!(text.ends_with("slow\n"));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut recovered = false;
        while std::time::Instant::now() < deadline {
            let (status, _) = get(addr, "/after");
            if status == 404 {
                recovered = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(recovered, "slot should free after the slow response");
        server.shutdown();
    }
}
