//! A minimal read-only HTTP/1.1 server over `std::net` — just enough
//! protocol for `repro --watch` to serve `status.json`, the metrics
//! timeline, and the live dashboard to a browser or `curl`.
//!
//! Deliberately not a web framework: `GET` only, one handler for the
//! whole path space, `Connection: close` on every response, a small
//! connection cap (excess connections get `503` immediately rather than
//! queueing behind the sweep), and a per-connection read timeout so a
//! stalled client can never pin a thread. The server never writes
//! anything — all mutation stays with the run that owns the store.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Longest request head accepted before answering `431`.
pub const MAX_REQUEST_BYTES: usize = 4096;

/// Connections served concurrently before new ones get `503`.
pub const DEFAULT_MAX_CONNECTIONS: usize = 8;

/// Per-connection read timeout.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(2);

/// A response the handler hands back for one request path.
pub struct Response {
    /// HTTP status code (200, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<Vec<u8>>) -> Self {
        Self {
            status: 200,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A `200 OK` HTML response.
    pub fn html(body: impl Into<Vec<u8>>) -> Self {
        Self {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: body.into(),
        }
    }

    /// A `200 OK` plain-text response.
    pub fn text(body: impl Into<Vec<u8>>) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A `404 Not Found` response.
    pub fn not_found() -> Self {
        Self {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: b"not found\n".to_vec(),
        }
    }

    /// A `503 Service Unavailable` response.
    pub fn unavailable() -> Self {
        Self {
            status: 503,
            content_type: "text/plain; charset=utf-8",
            body: b"busy\n".to_vec(),
        }
    }
}

/// Why a request head was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// Not a parseable HTTP/1.x request line.
    Malformed,
    /// Request head exceeded [`MAX_REQUEST_BYTES`].
    TooLarge,
    /// A method other than `GET`.
    Method,
}

impl RequestError {
    fn status(self) -> u16 {
        match self {
            RequestError::Malformed => 400,
            RequestError::TooLarge => 431,
            RequestError::Method => 405,
        }
    }
}

/// Parses a request head and returns the `GET` target path.
///
/// Accepts exactly `GET <path> HTTP/1.x`; anything else is rejected
/// with the appropriate [`RequestError`] and never panics, whatever the
/// bytes. Only the first line is inspected — headers are ignored.
pub fn parse_request(head: &[u8]) -> Result<&str, RequestError> {
    let Some(eol) = head.iter().position(|&b| b == b'\n') else {
        // No complete request line: either the client sent a huge one
        // or the connection died mid-line.
        return Err(if head.len() >= MAX_REQUEST_BYTES {
            RequestError::TooLarge
        } else {
            RequestError::Malformed
        });
    };
    let line = std::str::from_utf8(&head[..eol])
        .map_err(|_| RequestError::Malformed)?
        .trim_end_matches('\r');
    let mut parts = line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(RequestError::Malformed);
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed);
    }
    if method != "GET" {
        return Err(RequestError::Method);
    }
    if !path.starts_with('/') {
        return Err(RequestError::Malformed);
    }
    Ok(path)
}

/// Maps a request path to a [`Response`].
pub type Handler = Arc<dyn Fn(&str) -> Response + Send + Sync>;

/// A running server; shuts down on [`HttpServer::shutdown`] or drop.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    /// In-flight responses finish on their own threads.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves `handler` at `addr` with default limits
/// ([`DEFAULT_MAX_CONNECTIONS`], [`DEFAULT_READ_TIMEOUT`]).
pub fn serve(addr: impl ToSocketAddrs, handler: Handler) -> std::io::Result<HttpServer> {
    serve_with(addr, handler, DEFAULT_MAX_CONNECTIONS, DEFAULT_READ_TIMEOUT)
}

/// Serves `handler` at `addr` with explicit connection-cap and
/// read-timeout limits. Binding `port 0` picks a free port; read it
/// back with [`HttpServer::local_addr`].
pub fn serve_with(
    addr: impl ToSocketAddrs,
    handler: Handler,
    max_connections: usize,
    read_timeout: Duration,
) -> std::io::Result<HttpServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let shutdown_flag = Arc::clone(&shutdown);
    let live = Arc::new(AtomicUsize::new(0));
    let accept = std::thread::Builder::new()
        .name("qfab-httpd".into())
        .spawn(move || {
            accept_loop(
                listener,
                handler,
                shutdown_flag,
                live,
                max_connections.max(1),
                read_timeout,
            )
        })?;
    Ok(HttpServer {
        addr,
        shutdown,
        accept: Some(accept),
    })
}

fn accept_loop(
    listener: TcpListener,
    handler: Handler,
    shutdown: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    max_connections: usize,
    read_timeout: Duration,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if live.load(Ordering::Relaxed) >= max_connections {
                    // Over the cap: answer 503 inline rather than
                    // spawning. Drain the request head first — closing
                    // with unread bytes in the receive buffer would RST
                    // the connection and the client might never see the
                    // 503.
                    let mut stream = stream;
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                    let mut drain = [0u8; 512];
                    let _ = stream.read(&mut drain);
                    let _ = write_response(&mut stream, &Response::unavailable());
                    continue;
                }
                live.fetch_add(1, Ordering::Relaxed);
                let handler = Arc::clone(&handler);
                let conn_live = Arc::clone(&live);
                let spawned = std::thread::Builder::new()
                    .name("qfab-httpd-conn".into())
                    .spawn(move || {
                        handle_connection(stream, &handler, read_timeout);
                        conn_live.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    live.fetch_sub(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, handler: &Handler, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    // Read until the first line is complete (all we parse), the head
    // limit is hit, or the client stalls past the timeout.
    while !head.contains(&b'\n') && head.len() < MAX_REQUEST_BYTES {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let response = match parse_request(&head) {
        Ok(path) => handler(path),
        Err(e) => Response {
            status: e.status(),
            content_type: "text/plain; charset=utf-8",
            body: format!("{e:?}\n").into_bytes(),
        },
    };
    let _ = write_response(&mut stream, &response);
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let allow = if response.status == 405 {
        "Allow: GET\r\n"
    } else {
        ""
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        allow,
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn parse_accepts_a_plain_get() {
        assert_eq!(
            parse_request(b"GET /status.json HTTP/1.1\r\nHost: x\r\n\r\n"),
            Ok("/status.json")
        );
        assert_eq!(parse_request(b"GET / HTTP/1.0\n"), Ok("/"));
    }

    #[test]
    fn parse_rejects_malformed_heads_without_panicking() {
        for head in [
            &b""[..],
            b"\n",
            b"GET\n",
            b"GET /x\n",
            b"GET /x HTTP/1.1 extra\n",
            b"GET /x SMTP/1.1\n",
            b"GET x HTTP/1.1\n",
            b"\xff\xfe\xfd GET / HTTP/1.1\n",
            b"no newline yet",
        ] {
            match parse_request(head) {
                Err(RequestError::Malformed) => {}
                other => panic!("{head:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn parse_rejects_non_get_methods() {
        for head in [&b"POST /x HTTP/1.1\n"[..], b"DELETE / HTTP/1.1\n"] {
            assert_eq!(parse_request(head), Err(RequestError::Method));
        }
    }

    #[test]
    fn parse_rejects_oversized_heads() {
        let huge = vec![b'A'; MAX_REQUEST_BYTES + 10];
        assert_eq!(parse_request(&huge), Err(RequestError::TooLarge));
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let status = text
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
        (status, body.to_string())
    }

    #[test]
    fn serves_routes_and_errors_end_to_end() {
        let handler: Handler = Arc::new(|path| match path {
            "/ok" => Response::text("fine\n"),
            _ => Response::not_found(),
        });
        let mut server = serve("127.0.0.1:0", handler).unwrap();
        let addr = server.local_addr();
        assert_eq!(get(addr, "/ok"), (200, "fine\n".into()));
        assert_eq!(get(addr, "/nope").0, 404);

        // Non-GET gets 405 with an Allow header.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /ok HTTP/1.1\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 405"));
        assert!(text.contains("Allow: GET"));

        // Garbage gets 400, not a panic or a hang.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"\x01\x02\x03\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 400"));

        server.shutdown();
        // After shutdown the port stops answering.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn connection_cap_answers_503_instead_of_queueing() {
        // A handler that blocks until released, pinning its connection.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = std::sync::Mutex::new(release_rx);
        let handler: Handler = Arc::new(move |path| {
            if path == "/slow" {
                let _ = release_rx.lock().unwrap().recv();
                Response::text("slow\n")
            } else {
                Response::not_found()
            }
        });
        let mut server = serve_with("127.0.0.1:0", handler, 1, Duration::from_secs(5)).unwrap();
        let addr = server.local_addr();

        // Occupy the single slot.
        let mut slow = TcpStream::connect(addr).unwrap();
        write!(slow, "GET /slow HTTP/1.1\r\n\r\n").unwrap();
        // Wait until the connection is actually being handled: the next
        // request must see a 503 once the slot is taken.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut saw_503 = false;
        while std::time::Instant::now() < deadline {
            let (status, _) = get(addr, "/probe");
            if status == 503 {
                saw_503 = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(saw_503, "over-cap connection should get 503");

        // Release the slow handler; its response completes, and the
        // slot frees up for normal service again.
        release_tx.send(()).unwrap();
        let mut text = String::new();
        slow.read_to_string(&mut text).unwrap();
        assert!(text.ends_with("slow\n"));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut recovered = false;
        while std::time::Instant::now() < deadline {
            let (status, _) = get(addr, "/after");
            if status == 404 {
                recovered = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(recovered, "slot should free after the slow response");
        server.shutdown();
    }
}
