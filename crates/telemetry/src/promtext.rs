//! Prometheus text exposition format (version 0.0.4) for the registry.
//!
//! [`render`] turns a [`Snapshot`] plus the raw histogram buckets from
//! [`crate::registry::histogram_buckets`] into the plain-text format
//! every Prometheus-compatible scraper understands: a `# TYPE` header
//! per metric followed by its samples, histograms expanded into
//! cumulative `_bucket{le="…"}` series plus `_sum` and `_count`.
//! Registry names use dots (`exp.cache.hits`); [`metric_name`] maps
//! them onto the `[a-zA-Z_:][a-zA-Z0-9_:]*` charset the format
//! requires (`exp_cache_hits`).
//!
//! The module also carries its own hand-rolled [`validate`] checker —
//! used by the tests here and by CI to prove a live `/metrics` scrape
//! is parsing-clean — so the encoder and its referee evolve together
//! without an external Prometheus dependency.

use crate::histogram::{bucket_upper_bound, BUCKETS};
use crate::registry::{MetricValue, Snapshot};
use std::collections::HashMap;

/// The `Content-Type` a `/metrics` endpoint should answer with.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Maps a registry name onto the exposition-format name charset:
/// every character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading
/// digit gets a `_` prefix. `exp.cache.hits` → `exp_cache_hits`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn push_label_set(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&metric_name(k));
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
}

/// Appends one `# TYPE` header line. `kind` is `counter`, `gauge`, or
/// `histogram`; `name` must already be a valid metric name (use
/// [`metric_name`]).
pub fn push_type(out: &mut String, name: &str, kind: &str) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Appends one integer sample line (`name{labels} value`). Label
/// values are escaped; label names are sanitized like metric names.
pub fn push_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(name);
    push_label_set(out, labels);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Appends one special bucket sample with `le="+Inf"` plus the given
/// extra labels.
fn push_inf_bucket(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    let mut all: Vec<(&str, &str)> = labels.to_vec();
    all.push(("le", "+Inf"));
    push_sample(out, name, &all, value);
}

/// Renders a full registry capture in exposition format, with
/// `labels` attached to every sample (empty for an unlabelled scrape).
///
/// `buckets` supplies the raw per-bucket counts for each histogram in
/// the snapshot (from [`crate::registry::histogram_buckets`]); the
/// `_count` and `+Inf` samples are derived from the buckets themselves
/// so a concurrent recorder can never make them disagree. Gauges emit
/// their last value under the plain name and their high-water mark
/// under `<name>_high_water`.
pub fn render(
    snapshot: &Snapshot,
    buckets: &[(String, [u64; BUCKETS])],
    labels: &[(&str, &str)],
) -> String {
    let bucket_map: HashMap<&str, &[u64; BUCKETS]> =
        buckets.iter().map(|(n, b)| (n.as_str(), b)).collect();
    let mut out = String::new();
    for (name, value) in &snapshot.entries {
        let pname = metric_name(name);
        match value {
            MetricValue::Counter(c) => {
                push_type(&mut out, &pname, "counter");
                push_sample(&mut out, &pname, labels, *c);
            }
            MetricValue::Gauge(last, high) => {
                push_type(&mut out, &pname, "gauge");
                push_sample(&mut out, &pname, labels, *last);
                let high_name = format!("{pname}_high_water");
                push_type(&mut out, &high_name, "gauge");
                push_sample(&mut out, &high_name, labels, *high);
            }
            MetricValue::Histogram(summary) => {
                push_type(&mut out, &pname, "histogram");
                let bucket_name = format!("{pname}_bucket");
                let mut cumulative = 0u64;
                if let Some(counts) = bucket_map.get(name.as_str()) {
                    for (b, &n) in counts.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cumulative += n;
                        let le = bucket_upper_bound(b).to_string();
                        let mut all: Vec<(&str, &str)> = labels.to_vec();
                        all.push(("le", le.as_str()));
                        push_sample(&mut out, &bucket_name, &all, cumulative);
                    }
                }
                push_inf_bucket(&mut out, &bucket_name, labels, cumulative);
                push_sample(&mut out, &format!("{pname}_sum"), labels, summary.sum);
                push_sample(&mut out, &format!("{pname}_count"), labels, cumulative);
            }
        }
    }
    out
}

/// Renders the live registry (snapshot + histogram buckets) with no
/// extra labels — what a process's own `/metrics` endpoint serves.
pub fn render_registry() -> String {
    render(
        &crate::registry::snapshot(),
        &crate::registry::histogram_buckets(),
        &[],
    )
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(line.len());
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(stripped) = rest.strip_prefix('{') {
        let mut pos = 0;
        loop {
            // Label name up to '='.
            let tail = &stripped[pos..];
            if let Some(t) = tail.strip_prefix('}') {
                rest = t;
                break;
            }
            let eq = tail.find('=').ok_or("label missing '='")?;
            let lname = &tail[..eq];
            if !valid_label_name(lname) {
                return Err(format!("invalid label name {lname:?}"));
            }
            let after_eq = &tail[eq + 1..];
            if !after_eq.starts_with('"') {
                return Err("label value not quoted".to_string());
            }
            // Scan the quoted value honoring escapes.
            let mut value = String::new();
            let mut idx = 1;
            let bytes = after_eq.as_bytes();
            loop {
                if idx >= bytes.len() {
                    return Err("unterminated label value".to_string());
                }
                match bytes[idx] {
                    b'"' => break,
                    b'\\' => {
                        let esc = *bytes.get(idx + 1).ok_or("dangling escape")?;
                        match esc {
                            b'\\' => value.push('\\'),
                            b'"' => value.push('"'),
                            b'n' => value.push('\n'),
                            other => return Err(format!("bad escape \\{}", other as char)),
                        }
                        idx += 2;
                    }
                    _ => {
                        // Advance one UTF-8 character.
                        let s = &after_eq[idx..];
                        let c = s.chars().next().unwrap();
                        value.push(c);
                        idx += c.len_utf8();
                    }
                }
            }
            labels.push((lname.to_string(), value));
            let after_value = &after_eq[idx + 1..];
            let consumed = stripped.len() - after_value.len();
            pos = consumed;
            if let Some(t) = stripped[pos..].strip_prefix(',') {
                pos = stripped.len() - t.len();
            } else if !stripped[pos..].starts_with('}') {
                return Err("expected ',' or '}' after label".to_string());
            }
        }
    }
    let rest = rest.trim_start();
    let mut parts = rest.split_whitespace();
    let value_str = parts.next().ok_or("sample has no value")?;
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("unparseable value {v:?}"))?,
    };
    // An optional integer timestamp may follow; anything else is noise.
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("unparseable timestamp {ts:?}"))?;
    }
    if parts.next().is_some() {
        return Err("trailing garbage after sample".to_string());
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Validates exposition-format text: metric/label name charsets, quoted
/// and escaped label values, a `# TYPE` header preceding every sample
/// of its metric, and — for histograms — cumulative non-decreasing
/// `_bucket` series with monotonically increasing `le` bounds whose
/// `+Inf` bucket is present and equals `_count`.
///
/// This is the hand-rolled referee the tests and the CI smoke use to
/// prove a `/metrics` scrape is parsing-clean.
pub fn validate(text: &str) -> Result<(), String> {
    let mut types: HashMap<String, String> = HashMap::new();
    // Per histogram series (base name + non-le labels): bucket state.
    struct HistSeries {
        last_le: f64,
        last_cum: f64,
        inf: Option<f64>,
        count: Option<f64>,
    }
    let mut series: HashMap<String, HistSeries> = HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(type_decl) = comment.strip_prefix("TYPE ") {
                let mut parts = type_decl.split_whitespace();
                let name = parts.next().ok_or_else(|| at("TYPE without name".into()))?;
                let kind = parts.next().ok_or_else(|| at("TYPE without kind".into()))?;
                if !valid_name(name) {
                    return Err(at(format!("invalid metric name {name:?} in TYPE")));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(at(format!("unknown metric kind {kind:?}")));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(at(format!("duplicate TYPE for {name}")));
                }
            }
            // HELP and free-form comments are fine.
            continue;
        }
        let sample = parse_sample(line).map_err(&at)?;
        // Resolve the declared type: either the name itself, or a
        // histogram's _bucket/_sum/_count child series.
        let direct = types.get(&sample.name).cloned();
        let hist_base = ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
            sample.name.strip_suffix(suffix).and_then(|base| {
                (types.get(base).map(String::as_str) == Some("histogram"))
                    .then(|| (base.to_string(), *suffix))
            })
        });
        match (direct, hist_base) {
            (Some(kind), None) => {
                if kind == "histogram" {
                    return Err(at(format!(
                        "histogram {} sampled without _bucket/_sum/_count suffix",
                        sample.name
                    )));
                }
            }
            (None, Some((base, suffix))) => {
                let mut key_labels: Vec<(String, String)> = sample
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .cloned()
                    .collect();
                key_labels.sort();
                let key = format!("{base}|{key_labels:?}");
                let entry = series.entry(key).or_insert(HistSeries {
                    last_le: f64::NEG_INFINITY,
                    last_cum: f64::NEG_INFINITY,
                    inf: None,
                    count: None,
                });
                match suffix {
                    "_bucket" => {
                        let le = sample
                            .labels
                            .iter()
                            .find(|(k, _)| k == "le")
                            .map(|(_, v)| v.as_str())
                            .ok_or_else(|| at(format!("{} without le label", sample.name)))?;
                        let bound = match le {
                            "+Inf" => f64::INFINITY,
                            v => v
                                .parse::<f64>()
                                .map_err(|_| at(format!("unparseable le {v:?}")))?,
                        };
                        if bound <= entry.last_le {
                            return Err(at(format!(
                                "{base} buckets out of order (le {le} after {})",
                                entry.last_le
                            )));
                        }
                        if sample.value < entry.last_cum.max(0.0) {
                            return Err(at(format!(
                                "{base} bucket counts not cumulative ({} after {})",
                                sample.value, entry.last_cum
                            )));
                        }
                        entry.last_le = bound;
                        entry.last_cum = sample.value;
                        if bound.is_infinite() {
                            entry.inf = Some(sample.value);
                        }
                    }
                    "_count" => entry.count = Some(sample.value),
                    _ => {} // _sum carries no cross-checkable invariant
                }
            }
            (None, None) => {
                return Err(at(format!("sample {} has no preceding TYPE", sample.name)));
            }
            (Some(_), Some(_)) => {
                return Err(at(format!(
                    "{} is typed both directly and as a histogram child",
                    sample.name
                )));
            }
        }
    }
    for (key, s) in &series {
        let base = key.split('|').next().unwrap_or(key);
        let inf = s
            .inf
            .ok_or_else(|| format!("histogram {base} has no +Inf bucket"))?;
        let count = s
            .count
            .ok_or_else(|| format!("histogram {base} has no _count"))?;
        if inf != count {
            return Err(format!(
                "histogram {base}: +Inf bucket {inf} != _count {count}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exclusive_test_lock, registry, set_mode, Mode};

    #[test]
    fn metric_names_are_sanitized_onto_the_charset() {
        assert_eq!(metric_name("exp.cache.hits"), "exp_cache_hits");
        assert_eq!(metric_name("proc.rss.bytes"), "proc_rss_bytes");
        assert_eq!(metric_name("9lives"), "_9lives");
        assert_eq!(metric_name("a-b c"), "a_b_c");
        assert!(valid_name(&metric_name("weird*()name")));
    }

    #[test]
    fn live_registry_renders_parsing_clean_exposition() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        registry::reset();
        registry::counter("promtest.hits").add(7);
        registry::gauge("promtest.depth").set(3);
        let h = registry::histogram("promtest.lat_ns");
        h.record(0);
        h.record(5);
        h.record(1000);
        let text = render_registry();
        validate(&text).unwrap_or_else(|e| panic!("invalid exposition:\n{text}\n{e}"));
        assert!(text.contains("# TYPE promtest_hits counter\n"));
        assert!(text.contains("promtest_hits 7\n"));
        assert!(text.contains("# TYPE promtest_depth gauge\n"));
        assert!(text.contains("promtest_depth 3\n"));
        assert!(text.contains("promtest_depth_high_water 3\n"));
        assert!(text.contains("# TYPE promtest_lat_ns histogram\n"));
        assert!(text.contains("promtest_lat_ns_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("promtest_lat_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("promtest_lat_ns_sum 1005\n"));
        assert!(text.contains("promtest_lat_ns_count 3\n"));
        registry::reset();
        set_mode(Mode::Off);
    }

    #[test]
    fn labels_are_attached_and_escaped() {
        let mut out = String::new();
        push_type(&mut out, "job_cells_done", "gauge");
        push_sample(
            &mut out,
            "job_cells_done",
            &[("job", "ab\"c\\d"), ("worker", "0")],
            42,
        );
        validate(&out).expect("labelled sample should validate");
        assert!(out.contains("job_cells_done{job=\"ab\\\"c\\\\d\",worker=\"0\"} 42\n"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for (doc, needle) in [
            ("bad-name 1\n", "unparseable value"), // '-' ends the name; "-name" is no value
            ("# TYPE x widget\nx 1\n", "unknown metric kind"),
            ("x 1\n", "no preceding TYPE"),
            ("# TYPE x counter\nx notanumber\n", "unparseable value"),
            (
                "# TYPE x counter\n# TYPE x counter\nx 1\n",
                "duplicate TYPE",
            ),
            ("# TYPE x counter\nx{le=0} 1\n", "not quoted"),
            ("# TYPE x counter\nx{le=\"0} 1\n", "unterminated"),
            ("# TYPE x histogram\nx 1\n", "without _bucket"),
            (
                "# TYPE x histogram\nx_bucket{le=\"+Inf\"} 2\nx_sum 1\nx_count 3\n",
                "!= _count",
            ),
            (
                "# TYPE x histogram\nx_bucket{le=\"1\"} 1\nx_bucket{le=\"1\"} 2\n",
                "out of order",
            ),
            (
                "# TYPE x histogram\nx_bucket{le=\"1\"} 5\nx_bucket{le=\"2\"} 3\n",
                "not cumulative",
            ),
            ("# TYPE x histogram\nx_sum 1\nx_count 0\n", "no +Inf bucket"),
        ] {
            let err = validate(doc).expect_err(doc);
            assert!(
                err.contains(needle),
                "doc {doc:?}: error {err:?} missing {needle:?}"
            );
        }
    }

    #[test]
    fn bucket_series_is_cumulative_over_nonempty_buckets() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        registry::reset();
        let h = registry::histogram("promtest.cumulative");
        for v in [1u64, 1, 2, 700, 700, 700] {
            h.record(v);
        }
        let text = render_registry();
        validate(&text).unwrap();
        // 1,1 → bucket le=1; 2 → le=3; 700×3 → le=1023. Cumulative: 2, 3, 6.
        assert!(text.contains("promtest_cumulative_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("promtest_cumulative_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("promtest_cumulative_bucket{le=\"1023\"} 6\n"));
        assert!(text.contains("promtest_cumulative_bucket{le=\"+Inf\"} 6\n"));
        registry::reset();
        set_mode(Mode::Off);
    }
}
