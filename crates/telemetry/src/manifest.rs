//! JSON run manifests.
//!
//! A *run manifest* is the machine-readable provenance record written
//! next to each experiment's human-readable outputs: which artifact was
//! produced, from which seed and scale, how long it took, on how many
//! threads, and a full metrics snapshot. Manifests are the structured
//! feed for cross-run performance tracking (the future `BENCH_*.json`
//! trajectory).

use crate::json::Json;
use crate::registry::Snapshot;
use std::io;
use std::path::{Path, PathBuf};

/// Current manifest schema identifier.
pub const SCHEMA: &str = "qfab.run.v1";

/// Builder for a run manifest: a `schema`/`id` header, arbitrary
/// provenance fields in insertion order, and an optional metrics
/// snapshot appended last.
#[derive(Clone, Debug)]
pub struct Manifest {
    id: String,
    fields: Vec<(String, Json)>,
}

impl Manifest {
    /// Starts a manifest for the run artifact `id` (e.g. `"fig1a"`).
    pub fn new(id: &str) -> Self {
        Self {
            id: id.to_string(),
            fields: Vec::new(),
        }
    }

    /// The artifact id this manifest describes.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Appends a provenance field (insertion order is preserved in the
    /// encoded output).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Appends the metrics snapshot under a `"metrics"` key.
    pub fn metrics(self, snapshot: &Snapshot) -> Self {
        let json = snapshot.to_json();
        self.field("metrics", json)
    }

    /// The complete manifest as a JSON value.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            ("id".to_string(), Json::Str(self.id.clone())),
        ];
        obj.extend(self.fields.iter().cloned());
        Json::Obj(obj)
    }

    /// The conventional file name, `<id>.manifest.json`.
    pub fn file_name(&self) -> String {
        format!("{}.manifest.json", self.id)
    }

    /// Writes the manifest to an explicit path (pretty-printed).
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json().encode_pretty())
    }

    /// Writes `<dir>/<id>.manifest.json`, creating `dir` if missing,
    /// and returns the written path.
    pub fn write_to_dir(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        self.write_to(&path)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, exclusive_test_lock, reset, set_mode, snapshot, Mode};

    #[test]
    fn golden_manifest_encoding() {
        let m = Manifest::new("fig1a")
            .field("seed", 20220513u64)
            .field("instances", 8usize)
            .field("shots", 128u64)
            .field("elapsed_secs", 1.25)
            .field("threads", 4usize);
        assert_eq!(
            m.to_json().encode(),
            r#"{"schema":"qfab.run.v1","id":"fig1a","seed":20220513,"instances":8,"shots":128,"elapsed_secs":1.25,"threads":4}"#
        );
        assert_eq!(m.file_name(), "fig1a.manifest.json");
    }

    #[test]
    fn manifest_with_metrics_snapshot_round_trips_to_disk() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        reset();
        counter("manifest.test.counter").add(11);
        let snap = snapshot();
        set_mode(Mode::Off);

        let m = Manifest::new("testrun").field("seed", 7u64).metrics(&snap);
        let encoded = m.to_json().encode();
        assert!(
            encoded.starts_with(r#"{"schema":"qfab.run.v1","id":"testrun","seed":7,"metrics":{"#)
        );
        assert!(encoded.contains(r#""manifest.test.counter":11"#));

        let dir = std::env::temp_dir().join("qfab_manifest_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = m.write_to_dir(&dir).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "testrun.manifest.json"
        );
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, m.to_json().encode_pretty());
        assert!(on_disk.ends_with("}\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
