//! Log-bucketed concurrent histogram.
//!
//! Values are `u64` (nanoseconds for timers, plain counts for lengths).
//! Bucket `0` holds exact zeros; bucket `b ≥ 1` holds values in
//! `[2^(b-1), 2^b)`. Recording is wait-free (one `fetch_add` plus
//! min/max updates); quantiles are estimated at snapshot time by linear
//! interpolation inside the covering bucket, so any estimate is within
//! a factor of 2 of the true order statistic.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log buckets: bucket `0` holds exact zeros, bucket `b ≥ 1`
/// covers `[2^(b-1), 2^b)`, and bucket `64` tops out at `u64::MAX`.
pub const BUCKETS: usize = 65;

/// The inclusive upper bound of bucket `b`: `0` for the zero bucket,
/// `2^b - 1` for the power-of-two buckets, `u64::MAX` for the top one.
/// This is the `le` boundary the Prometheus exposition encoder
/// ([`crate::promtext`]) publishes for cumulative bucket counts.
pub fn bucket_upper_bound(b: usize) -> u64 {
    match b {
        0 => 0,
        1..=63 => (1u64 << b) - 1,
        _ => u64::MAX,
    }
}

/// A concurrent log-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The index of the bucket covering `value`.
#[inline]
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample if telemetry is enabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.record_always(value);
    }

    /// Records one sample unconditionally (used by spans, which already
    /// checked the mode when they captured their start time).
    #[inline]
    pub(crate) fn record_always(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Starts an RAII span timer that records elapsed nanoseconds into
    /// this histogram on drop (a no-op when telemetry is off).
    #[inline]
    pub fn span(&'static self) -> crate::Span {
        crate::Span::enter(self, crate::enabled())
    }

    /// Like [`Histogram::span`], but only active in [`crate::Mode::Detail`]
    /// (for hot paths where even an `Instant::now` pair per event is
    /// only worth paying when explicitly requested).
    #[inline]
    pub fn span_detail(&'static self) -> crate::Span {
        crate::Span::enter(self, crate::detail())
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Zeroes the histogram.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the recorded
    /// samples, or 0 when empty. Exact for bucket boundaries and for
    /// the extreme quantiles (which clamp to the recorded min/max);
    /// otherwise within a factor of 2 by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        if q <= 0.0 {
            return min;
        }
        if q >= 1.0 {
            return max;
        }
        // 1-based rank of the order statistic we are after.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (b, slot) in self.buckets.iter().enumerate() {
            let here = slot.load(Ordering::Relaxed);
            if here == 0 {
                continue;
            }
            if seen + here >= rank {
                if b == 0 {
                    return 0;
                }
                let lo = 1u64 << (b - 1);
                let hi = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
                // Linear interpolation of the rank inside the bucket.
                let into = (rank - seen) as f64 / here as f64;
                let est = lo as f64 + (hi - lo) as f64 * into;
                return (est as u64).clamp(min, max);
            }
            seen += here;
        }
        max
    }

    /// The raw per-bucket sample counts (index `b` is the bucket whose
    /// inclusive upper bound is [`bucket_upper_bound`]`(b)`). The
    /// summary deliberately drops these; the Prometheus encoder needs
    /// them back.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (b, slot) in self.buckets.iter().enumerate() {
            out[b] = slot.load(Ordering::Relaxed);
        }
        out
    }

    /// Freezes the histogram into a plain summary.
    pub fn summarize(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exclusive_test_lock, set_mode, Mode};

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1 << 20), 21);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn quantiles_track_sorted_reference_within_bucket_resolution() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        let h = Histogram::new();
        // A skewed deterministic sample set.
        let mut reference: Vec<u64> = (1..=1000u64).map(|i| i * i % 7919 + 1).collect();
        for &v in &reference {
            h.record(v);
        }
        reference.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * reference.len() as f64).ceil() as usize).max(1) - 1;
            let truth = reference[rank] as f64;
            let est = h.quantile(q) as f64;
            assert!(
                est >= truth / 2.0 && est <= truth * 2.0,
                "q={q}: estimate {est} vs truth {truth}"
            );
        }
        assert_eq!(h.quantile(0.0), *reference.first().unwrap());
        assert_eq!(h.quantile(1.0), *reference.last().unwrap());
        let s = h.summarize();
        assert_eq!(s.count, 1000);
        let true_mean = reference.iter().sum::<u64>() as f64 / 1000.0;
        assert!((s.mean - true_mean).abs() < 1e-9);
        set_mode(Mode::Off);
    }

    #[test]
    fn empty_and_zero_samples() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        let h = Histogram::new();
        assert_eq!(h.summarize().count, 0);
        assert_eq!(h.quantile(0.5), 0);
        h.record(0);
        h.record(0);
        let s = h.summarize();
        assert_eq!((s.count, s.min, s.max, s.p50), (2, 0, 0, 0));
        set_mode(Mode::Off);
    }

    #[test]
    fn quantile_single_sample_is_exact_for_every_q() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        let h = Histogram::new();
        h.record(42);
        // With one sample every quantile is that sample, including the
        // clamped out-of-range requests.
        for q in [-0.5, 0.0, 0.25, 0.5, 0.99, 1.0, 2.0] {
            assert_eq!(h.quantile(q), 42, "q={q}");
        }
        set_mode(Mode::Off);
    }

    #[test]
    fn quantile_extremes_clamp_to_recorded_min_max() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        let h = Histogram::new();
        for v in [3, 900, 17] {
            h.record(v);
        }
        // q<=0 and q>=1 bypass bucket interpolation entirely.
        assert_eq!(h.quantile(-1.0), 3);
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.quantile(1.0), 900);
        assert_eq!(h.quantile(1.5), 900);
        // Interior estimates can never escape the recorded range.
        for q in [0.01, 0.5, 0.99] {
            let est = h.quantile(q);
            assert!((3..=900).contains(&est), "q={q}: {est}");
        }
        set_mode(Mode::Off);
    }

    #[test]
    fn quantile_bucket_boundary_samples_stay_within_factor_two() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        let h = Histogram::new();
        // Powers of two sit on bucket-open boundaries — the worst case
        // for the power-of-two buckets. The estimate may land anywhere
        // inside the bucket but never outside [v, 2v).
        let samples = [1u64, 2, 4, 8];
        for &v in &samples {
            h.record(v);
        }
        for (i, &v) in samples.iter().enumerate() {
            let q = (i + 1) as f64 / samples.len() as f64;
            let est = h.quantile(q);
            assert!(
                est >= v && est < 2 * v.max(1),
                "q={q}: estimate {est} outside [{v}, {})",
                2 * v
            );
        }
        // The extreme quantile is exact even mid-bucket.
        assert_eq!(h.quantile(1.0), 8);
        assert_eq!(h.quantile(0.0), 1);
        set_mode(Mode::Off);
    }

    #[test]
    fn reset_clears_everything() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        let h = Histogram::new();
        h.record(17);
        h.reset();
        let s = h.summarize();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        set_mode(Mode::Off);
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Off);
        let h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn concurrent_recording_loses_no_samples() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        static H: Histogram = Histogram::new();
        H.reset();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        H.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(H.count(), 80_000);
        assert_eq!(H.summarize().max, 79_999);
        set_mode(Mode::Off);
    }
}
