//! The process-global metric registry.
//!
//! Metrics are registered lazily by name on first lookup and live for
//! the rest of the process (`Box::leak`), so handles are `&'static` and
//! recording never touches the registry lock. While telemetry is
//! [`crate::Mode::Off`], lookups skip the registry entirely and return
//! a shared inert handle — no allocation, no lock (see the crate docs
//! for the resulting enable-before-first-use rule).

use crate::histogram::{Histogram, HistogramSummary};
use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` if telemetry is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments by one if telemetry is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-written-value gauge that also tracks its high-water mark
/// (byte budgets, table sizes, pool widths).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
            high: AtomicU64::new(0),
        }
    }

    /// Sets the gauge if telemetry is enabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
            self.high.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The last value set.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The largest value ever set.
    pub fn high_water(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge and its high-water mark.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.high.store(0, Ordering::Relaxed);
    }
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

static NULL_COUNTER: Counter = Counter::new();
static NULL_GAUGE: Gauge = Gauge::new();
static NULL_HISTOGRAM: Histogram = Histogram::new();

/// The counter registered under `name` (registered on first use).
pub fn counter(name: &'static str) -> &'static Counter {
    if !crate::enabled() {
        return &NULL_COUNTER;
    }
    lock(&registry().counters)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// The gauge registered under `name` (registered on first use).
pub fn gauge(name: &'static str) -> &'static Gauge {
    if !crate::enabled() {
        return &NULL_GAUGE;
    }
    lock(&registry().gauges)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
}

/// The histogram registered under `name` (registered on first use).
pub fn histogram(name: &'static str) -> &'static Histogram {
    if !crate::enabled() {
        return &NULL_HISTOGRAM;
    }
    lock(&registry().histograms)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// Zeroes every registered metric (per-run isolation: `repro` resets
/// between panels so each manifest reflects exactly one panel).
pub fn reset() {
    let reg = registry();
    for c in lock(&reg.counters).values() {
        c.reset();
    }
    for g in lock(&reg.gauges).values() {
        g.reset();
    }
    for h in lock(&reg.histograms).values() {
        h.reset();
    }
}

/// One frozen metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter's total.
    Counter(u64),
    /// A gauge's `(last, high_water)` pair.
    Gauge(u64, u64),
    /// A histogram summary.
    Histogram(HistogramSummary),
}

/// A sorted point-in-time capture of every registered metric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name within each metric kind.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// The value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// The last value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Gauge(g, _) if n == name => Some(*g),
            _ => None,
        })
    }

    /// The summary of a histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Histogram(h) if n == name => Some(*h),
            _ => None,
        })
    }

    /// Encodes the snapshot as a JSON object with `counters`, `gauges`,
    /// and `histograms` sub-objects (keys sorted, deterministic).
    pub fn to_json(&self) -> Json {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(c) => counters.push((name.clone(), Json::U64(*c))),
                MetricValue::Gauge(last, high) => gauges.push((
                    name.clone(),
                    Json::Obj(vec![
                        ("last".into(), Json::U64(*last)),
                        ("high_water".into(), Json::U64(*high)),
                    ]),
                )),
                MetricValue::Histogram(h) => histograms.push((
                    name.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::U64(h.count)),
                        ("sum".into(), Json::U64(h.sum)),
                        ("mean".into(), Json::F64(h.mean)),
                        ("min".into(), Json::U64(h.min)),
                        ("max".into(), Json::U64(h.max)),
                        ("p50".into(), Json::U64(h.p50)),
                        ("p90".into(), Json::U64(h.p90)),
                        ("p99".into(), Json::U64(h.p99)),
                    ]),
                )),
            }
        }
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(histograms)),
        ])
    }
}

/// Freezes every registered histogram's raw per-bucket counts as
/// `(name, counts)` pairs sorted by name. [`HistogramSummary`] drops
/// the buckets to stay `Copy`; the Prometheus exposition encoder
/// ([`crate::promtext`]) needs them to publish cumulative `le` series.
pub fn histogram_buckets() -> Vec<(String, [u64; crate::histogram::BUCKETS])> {
    let reg = registry();
    lock(&reg.histograms)
        .iter()
        .map(|(name, h)| (name.to_string(), h.bucket_counts()))
        .collect()
}

/// Freezes every registered metric into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let mut entries = Vec::new();
    for (name, c) in lock(&reg.counters).iter() {
        entries.push((name.to_string(), MetricValue::Counter(c.get())));
    }
    for (name, g) in lock(&reg.gauges).iter() {
        entries.push((
            name.to_string(),
            MetricValue::Gauge(g.get(), g.high_water()),
        ));
    }
    for (name, h) in lock(&reg.histograms).iter() {
        entries.push((name.to_string(), MetricValue::Histogram(h.summarize())));
    }
    Snapshot { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exclusive_test_lock, set_mode, Mode};

    #[test]
    fn concurrent_counter_increments_from_many_threads() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        counter("test.concurrent").reset();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    let c = counter("test.concurrent");
                    for _ in 0..25_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter("test.concurrent").get(), 200_000);
        set_mode(Mode::Off);
    }

    #[test]
    fn lookup_returns_the_same_handle() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        let a = counter("test.same") as *const Counter;
        let b = counter("test.same") as *const Counter;
        assert_eq!(a, b);
        set_mode(Mode::Off);
    }

    #[test]
    fn disabled_lookup_is_inert() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Off);
        let c = counter("test.disabled.never_registered");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = gauge("test.disabled.never_registered");
        g.set(9);
        assert_eq!(g.get(), 0);
        set_mode(Mode::Summary);
        let snap = snapshot();
        assert_eq!(snap.counter("test.disabled.never_registered"), None);
        assert_eq!(snap.gauge("test.disabled.never_registered"), None);
        set_mode(Mode::Off);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        let g = gauge("test.gauge");
        g.reset();
        g.set(10);
        g.set(4);
        assert_eq!(g.get(), 4);
        assert_eq!(g.high_water(), 10);
        set_mode(Mode::Off);
    }

    #[test]
    fn snapshot_reflects_and_reset_clears() {
        let _guard = exclusive_test_lock();
        set_mode(Mode::Summary);
        reset();
        counter("test.snap.c").add(7);
        gauge("test.snap.g").set(3);
        histogram("test.snap.h").record(100);
        let snap = snapshot();
        assert_eq!(snap.counter("test.snap.c"), Some(7));
        assert_eq!(snap.gauge("test.snap.g"), Some(3));
        assert_eq!(snap.histogram("test.snap.h").unwrap().count, 1);
        reset();
        let snap = snapshot();
        assert_eq!(snap.counter("test.snap.c"), Some(0));
        assert_eq!(snap.histogram("test.snap.h").unwrap().count, 0);
        set_mode(Mode::Off);
    }
}
