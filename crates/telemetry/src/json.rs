//! A minimal hand-rolled JSON value and encoder.
//!
//! Deliberately tiny instead of pulling in `serde`: the manifest writer
//! only needs construction and deterministic serialization. Objects
//! preserve insertion order so encoded output is stable byte-for-byte,
//! which lets tests pin golden strings the same way `qfab-circuit`'s
//! QASM tests do.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values encode as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document (the inverse of [`Json::encode`] /
    /// [`Json::encode_pretty`]).
    ///
    /// Supports the full grammar this crate emits — objects, arrays,
    /// strings with the encoder's escape set plus `\uXXXX`, integers
    /// (mapped to `U64` when non-negative, `I64` otherwise), floats,
    /// booleans, and `null` — which is all the store and manifest
    /// formats ever contain. Trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the on-disk manifest format.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => write_f64(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{}` prints integral floats without a fraction ("3"), which is
        // still a valid JSON number and round-trips exactly.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: byte offset plus description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') | Some(b'f') => {
                if self.eat_literal("true") {
                    Ok(Json::Bool(true))
                } else if self.eat_literal("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // The encoder only emits \u for control
                            // characters; reject surrogates rather than
                            // pairing them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume the whole unescaped run at once. UTF-8
                    // continuation bytes are ≥ 0x80, so scanning for the
                    // ASCII delimiters never splits a scalar.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_scalars() {
        assert_eq!(Json::Null.encode(), "null");
        assert_eq!(Json::Bool(true).encode(), "true");
        assert_eq!(
            Json::U64(18_446_744_073_709_551_615).encode(),
            "18446744073709551615"
        );
        assert_eq!(Json::I64(-42).encode(), "-42");
        assert_eq!(Json::F64(1.5).encode(), "1.5");
        assert_eq!(Json::F64(3.0).encode(), "3");
        assert_eq!(Json::F64(f64::NAN).encode(), "null");
        assert_eq!(Json::F64(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn golden_string_escaping() {
        assert_eq!(Json::Str("plain".into()).encode(), r#""plain""#);
        assert_eq!(
            Json::Str("a\"b\\c\nd\te\r".into()).encode(),
            r#""a\"b\\c\nd\te\r""#
        );
        assert_eq!(Json::Str("\u{1}".into()).encode(), "\"\\u0001\"");
        assert_eq!(Json::Str("κβτ".into()).encode(), r#""κβτ""#);
    }

    #[test]
    fn golden_compound() {
        let v = Json::Obj(vec![
            ("id".into(), Json::Str("fig1a".into())),
            ("seed".into(), Json::U64(20220513)),
            (
                "rates".into(),
                Json::Arr(vec![Json::F64(0.0), Json::F64(0.005)]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("ok".into(), Json::Bool(true))]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(
            v.encode(),
            r#"{"id":"fig1a","seed":20220513,"rates":[0,0.005],"nested":{"ok":true},"empty_arr":[],"empty_obj":{}}"#
        );
    }

    #[test]
    fn golden_pretty() {
        let v = Json::Obj(vec![
            ("a".into(), Json::U64(1)),
            ("b".into(), Json::Arr(vec![Json::U64(2), Json::U64(3)])),
        ]);
        assert_eq!(
            v.encode_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2,\n    3\n  ]\n}\n"
        );
    }

    #[test]
    fn display_matches_encode() {
        let v = Json::Arr(vec![Json::Null, Json::from("x")]);
        assert_eq!(format!("{v}"), v.encode());
    }

    #[test]
    fn parse_round_trips_compact_and_pretty() {
        let v = Json::Obj(vec![
            ("id".into(), Json::Str("fig1a".into())),
            ("seed".into(), Json::U64(20220513)),
            ("neg".into(), Json::I64(-3)),
            (
                "rates".into(),
                Json::Arr(vec![Json::F64(0.0), Json::F64(0.005)]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("ok".into(), Json::Bool(true))]),
            ),
            ("none".into(), Json::Null),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let compact = Json::parse(&v.encode()).unwrap();
        // F64(0.0) encodes as "0" and reparses as U64(0): compare via
        // re-encoding, which is the byte-stability contract that matters.
        assert_eq!(compact.encode(), v.encode());
        let pretty = Json::parse(&v.encode_pretty()).unwrap();
        assert_eq!(pretty.encode(), v.encode());
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let v = Json::Str("a\"b\\c\nd\te\r\u{1}κβτ".into());
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
        assert_eq!(Json::parse(r#""A\/""#).unwrap(), Json::Str("A/".into()));
    }

    #[test]
    fn parse_round_trips_nested_escapes_and_unicode() {
        // Escapes in keys and values at every nesting level, mixed with
        // raw multi-byte UTF-8 (including an astral-plane scalar, which
        // the encoder passes through as raw bytes rather than \u pairs).
        let v = Json::Obj(vec![
            (
                "path\\with\"quotes".into(),
                Json::Arr(vec![
                    Json::Str("line1\nline2\ttabbed".into()),
                    Json::Obj(vec![
                        ("κλειδί".into(), Json::Str("τιμή\u{1}\u{1f}".into())),
                        ("crab".into(), Json::Str("🦀 \u{10348} done".into())),
                    ]),
                ]),
            ),
            (
                "ctrl\u{8}\u{c}".into(),
                Json::Str("backspace and formfeed round-trip".into()),
            ),
        ]);
        let reparsed = Json::parse(&v.encode()).unwrap();
        assert_eq!(reparsed, v);
        // Stability under a second cycle: encode(parse(encode(x))) is
        // byte-identical, so stored artifacts never drift on rewrite.
        assert_eq!(reparsed.encode(), v.encode());
        let pretty = Json::parse(&v.encode_pretty()).unwrap();
        assert_eq!(pretty, v);
    }

    #[test]
    fn parse_bmp_unicode_escapes_and_rejects_surrogates() {
        // Hand-written \uXXXX escapes (the encoder itself only emits
        // them for control characters) decode to their scalar values.
        assert_eq!(
            Json::parse(r#""\u03ba\u03b2\u03c4""#).unwrap(),
            Json::Str("\u{3ba}\u{3b2}\u{3c4}".into())
        );
        assert_eq!(
            Json::parse(r#""A\u000a\u0009""#).unwrap(),
            Json::Str("A\n\t".into())
        );
        // Surrogate code points are not scalar values; the parser
        // rejects them (lone or paired) instead of emitting invalid
        // UTF-8 — astral characters must arrive as raw UTF-8 bytes.
        assert!(Json::parse(r#""\ud83e""#).is_err());
        assert!(Json::parse(r#""\ud83e\udd80""#).is_err());
        assert_eq!(
            Json::parse("\"\u{1f980}\"").unwrap(),
            Json::Str("\u{1f980}".into())
        );
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Json::parse("0").unwrap(), Json::U64(0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::U64(u64::MAX)
        );
        assert_eq!(Json::parse("-42").unwrap(), Json::I64(-42));
        assert_eq!(Json::parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::F64(2000.0));
        assert_eq!(Json::parse("-0.25").unwrap(), Json::F64(-0.25));
    }

    #[test]
    fn parse_accessors() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":true,"d":2.5,"e":-7}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("d").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("e").and_then(Json::as_i64), Some(-7));
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "tru",
            "nul",
            r#""unterminated"#,
            "1 2",
            "{} []",
            r#""\q""#,
            r#""\u12""#,
            "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad:?}");
        }
    }
}
