//! A minimal hand-rolled JSON value and encoder.
//!
//! Deliberately tiny instead of pulling in `serde`: the manifest writer
//! only needs construction and deterministic serialization. Objects
//! preserve insertion order so encoded output is stable byte-for-byte,
//! which lets tests pin golden strings the same way `qfab-circuit`'s
//! QASM tests do.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values encode as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serializes compactly (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the on-disk manifest format.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => write_f64(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{}` prints integral floats without a fraction ("3"), which is
        // still a valid JSON number and round-trips exactly.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_scalars() {
        assert_eq!(Json::Null.encode(), "null");
        assert_eq!(Json::Bool(true).encode(), "true");
        assert_eq!(
            Json::U64(18_446_744_073_709_551_615).encode(),
            "18446744073709551615"
        );
        assert_eq!(Json::I64(-42).encode(), "-42");
        assert_eq!(Json::F64(1.5).encode(), "1.5");
        assert_eq!(Json::F64(3.0).encode(), "3");
        assert_eq!(Json::F64(f64::NAN).encode(), "null");
        assert_eq!(Json::F64(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn golden_string_escaping() {
        assert_eq!(Json::Str("plain".into()).encode(), r#""plain""#);
        assert_eq!(
            Json::Str("a\"b\\c\nd\te\r".into()).encode(),
            r#""a\"b\\c\nd\te\r""#
        );
        assert_eq!(Json::Str("\u{1}".into()).encode(), "\"\\u0001\"");
        assert_eq!(Json::Str("κβτ".into()).encode(), r#""κβτ""#);
    }

    #[test]
    fn golden_compound() {
        let v = Json::Obj(vec![
            ("id".into(), Json::Str("fig1a".into())),
            ("seed".into(), Json::U64(20220513)),
            (
                "rates".into(),
                Json::Arr(vec![Json::F64(0.0), Json::F64(0.005)]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("ok".into(), Json::Bool(true))]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(
            v.encode(),
            r#"{"id":"fig1a","seed":20220513,"rates":[0,0.005],"nested":{"ok":true},"empty_arr":[],"empty_obj":{}}"#
        );
    }

    #[test]
    fn golden_pretty() {
        let v = Json::Obj(vec![
            ("a".into(), Json::U64(1)),
            ("b".into(), Json::Arr(vec![Json::U64(2), Json::U64(3)])),
        ]);
        assert_eq!(
            v.encode_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2,\n    3\n  ]\n}\n"
        );
    }

    #[test]
    fn display_matches_encode() {
        let v = Json::Arr(vec![Json::Null, Json::from("x")]);
        assert_eq!(format!("{v}"), v.encode());
    }
}
