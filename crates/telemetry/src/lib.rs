#![warn(missing_docs)]

//! Zero-dependency instrumentation for the qfab stack.
//!
//! Everything here is built from `std` only — atomics, `OnceLock`, a
//! `Mutex`-guarded registry map, and a hand-rolled JSON encoder — so the
//! crate can sit below every other workspace member without pulling in
//! `serde` or `tracing`.
//!
//! ## Model
//!
//! * **Metrics** are process-global, named, and thread-safe:
//!   [`Counter`] (monotonic `u64`), [`Gauge`] (last/max `u64`, for byte
//!   budgets and pool sizes), and [`Histogram`] (log-bucketed `u64`
//!   samples with p50/p90/p99 + mean, for latencies and replay lengths).
//! * **Spans** ([`Span`]) are RAII timers that record elapsed
//!   nanoseconds into a histogram on drop.
//! * **Snapshots** ([`snapshot`]) freeze every registered metric into a
//!   sorted, serializable [`Snapshot`], the payload of the JSON *run
//!   manifest* ([`manifest::Manifest`]) written next to experiment
//!   outputs.
//! * **Traces** ([`trace`]) are ring-buffered begin/end/instant event
//!   timelines exported as Chrome `trace_event` JSON (Perfetto-loadable),
//!   with an always-on crash flight recorder. Gated by `QFAB_TRACE`,
//!   independent of the metric [`Mode`].
//! * **Live monitoring** ([`monitor`]) samples the registry on a fixed
//!   interval into a bounded time-series ring and atomically maintains
//!   a `status.json` heartbeat on disk; [`httpd`] is the minimal
//!   read-only HTTP/1.1 server (`std::net` only) that `repro --watch`
//!   uses to serve it.
//!
//! ## Runtime switch
//!
//! The global [`Mode`] comes from the `QFAB_TELEMETRY` environment
//! variable (`off` | `summary` | `detail`, default *off*) and can be
//! overridden programmatically with [`set_mode`] (e.g. by the
//! `repro --metrics` flag). `summary` enables counters, gauges, and
//! coarse per-phase spans; `detail` additionally enables hot-path
//! histograms (per-trajectory replay lengths, per-shot sampling).
//!
//! When the mode is [`Mode::Off`], every recording operation — handle
//! lookup included — is allocation-free and lock-free: lookups return a
//! shared inert handle and recording methods reduce to one relaxed
//! atomic load. Consequently handles acquired *while disabled* stay
//! inert even if telemetry is enabled later: processes that want
//! metrics must select a mode (env var or [`set_mode`]) before first
//! use, which `repro` does during argument parsing.
//!
//! ```
//! use qfab_telemetry as telemetry;
//!
//! let _guard = telemetry::exclusive_test_lock();
//! telemetry::set_mode(telemetry::Mode::Detail);
//! telemetry::reset();
//!
//! telemetry::counter("demo.events").add(3);
//! {
//!     let _span = telemetry::histogram("demo.work_ns").span();
//!     // ... timed work ...
//! }
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("demo.events"), Some(3));
//! assert_eq!(snap.histogram("demo.work_ns").unwrap().count, 1);
//! telemetry::set_mode(telemetry::Mode::Off);
//! ```

pub mod histogram;
pub mod httpd;
pub mod json;
pub mod manifest;
pub mod monitor;
pub mod promtext;
pub mod registry;
pub mod span;
pub mod svg;
pub mod trace;

pub use histogram::{Histogram, HistogramSummary};
pub use json::{Json, JsonParseError};
pub use manifest::Manifest;
pub use registry::{
    counter, gauge, histogram, reset, snapshot, Counter, Gauge, MetricValue, Snapshot,
};
pub use span::Span;
pub use trace::{TraceEvent, TraceMode, TracePhase, TraceSpan};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// How much the instrumentation layer records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Mode {
    /// Record nothing; every instrumentation call is a near-no-op.
    Off = 0,
    /// Counters, gauges, and coarse (per-phase) span timers.
    Summary = 1,
    /// Everything, including hot-path histograms (per-trajectory,
    /// per-shot instrumentation).
    Detail = 2,
}

const MODE_UNSET: u8 = u8::MAX;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn mode_from_env() -> Mode {
    match std::env::var("QFAB_TELEMETRY").as_deref() {
        Ok("summary") | Ok("on") | Ok("1") => Mode::Summary,
        Ok("detail") | Ok("2") => Mode::Detail,
        _ => Mode::Off,
    }
}

/// The active telemetry mode (initialized from `QFAB_TELEMETRY` on
/// first call).
#[inline]
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        0 => Mode::Off,
        1 => Mode::Summary,
        2 => Mode::Detail,
        _ => {
            let m = mode_from_env();
            MODE.store(m as u8, Ordering::Relaxed);
            m
        }
    }
}

/// Overrides the telemetry mode for the whole process.
pub fn set_mode(mode: Mode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// Whether anything at all is being recorded (`summary` or `detail`).
#[inline]
pub fn enabled() -> bool {
    mode() != Mode::Off
}

/// Whether hot-path (per-trajectory / per-shot) instrumentation is on.
#[inline]
pub fn detail() -> bool {
    mode() == Mode::Detail
}

/// Serializes tests that mutate the process-global mode or registry.
///
/// `cargo test` runs tests of one binary concurrently; any test that
/// calls [`set_mode`] or [`reset`] must hold this lock to avoid
/// interleaving with other such tests.
pub fn exclusive_test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_override_round_trips() {
        let _guard = exclusive_test_lock();
        let before = mode();
        set_mode(Mode::Detail);
        assert_eq!(mode(), Mode::Detail);
        assert!(enabled());
        assert!(detail());
        set_mode(Mode::Summary);
        assert!(enabled());
        assert!(!detail());
        set_mode(Mode::Off);
        assert!(!enabled());
        set_mode(before);
    }
}
