//! Structured event tracing with Chrome `trace_event` export and a
//! crash flight recorder.
//!
//! Where the metric registry answers "how much did we do", tracing
//! answers "where did the wall clock go *over time*": every
//! instrumented phase emits begin/end (or instant) events carrying a
//! monotonic microsecond timestamp, a small process-unique thread id,
//! and up to [`MAX_ARGS`] key/value arguments — all `Copy`, so the hot
//! path never allocates.
//!
//! ## Runtime switch
//!
//! The global [`TraceMode`] comes from `QFAB_TRACE`:
//!
//! * unset / `off` — every trace call reduces to one relaxed atomic
//!   load (asserted by the workspace `no_alloc` test);
//! * `on` — full tracing into a bounded ring buffer, exported to
//!   `qfab_trace.json` in the current directory;
//! * `on:<path>` — same, exported to `<path>`.
//!
//! Two event classes exist: *coarse* points ([`span`], [`instant`]) fire
//! whenever tracing is armed at all, while *hot-path* points
//! ([`span_detail`], [`instant_detail`] — per-trajectory-replay, per
//! WAL append) fire only under full tracing, so the always-on flight
//! recorder stays cheap.
//!
//! ## Ring buffers
//!
//! Events land in fixed-capacity rings that overwrite their oldest
//! entry when full (the `dropped` count is reported in the export), so
//! memory use is bounded no matter how long a sweep runs. The *trace
//! ring* (default [`DEFAULT_RING_CAPACITY`] events) feeds the Chrome
//! JSON exporter; the small *flight ring* ([`FLIGHT_RING_CAPACITY`]
//! events) always holds the most recent coarse spans and is dumped to
//! `<id>.flightrec.json` by a panic hook ([`install_flight_recorder`])
//! so a crashed sweep leaves a timeline of its final moments behind.
//!
//! ## Export format
//!
//! [`to_chrome_json`] emits the Chrome `trace_event` JSON array format
//! (`{"traceEvents":[...]}` with `B`/`E`/`i` phases and microsecond
//! timestamps), loadable directly in [Perfetto](https://ui.perfetto.dev)
//! or `chrome://tracing`, and parseable by this crate's own
//! [`Json::parse`] for the `repro trace-report` analyzer.

use crate::json::Json;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

/// How much the tracing layer records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceMode {
    /// Record nothing; every trace call is one relaxed atomic load.
    Off = 0,
    /// Coarse spans into the flight ring only (crash forensics).
    Flight = 1,
    /// Everything, including hot-path events, into the trace ring
    /// (and the flight ring).
    Full = 2,
}

/// Default trace-ring capacity in events (~8 MiB of events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Flight-recorder ring capacity: the last N coarse span events.
pub const FLIGHT_RING_CAPACITY: usize = 512;

/// Maximum arguments one event can carry.
pub const MAX_ARGS: usize = 3;

/// An argument value. `Str` is `&'static` so events stay `Copy` and
/// recording stays allocation-free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer (`-1` conventionally encodes "full" AQFT depth).
    I64(i64),
    /// A float.
    F64(f64),
    /// A static string.
    Str(&'static str),
}

/// One named argument.
pub type Arg = (&'static str, ArgValue);

/// The event kind, mirroring Chrome's `ph` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// Span start (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// A point event (`"i"`).
    Instant,
}

impl TracePhase {
    fn chrome(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
        }
    }
}

/// One trace event. `Copy` and fixed-size by construction.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Event (span) name.
    pub name: &'static str,
    /// Begin / end / instant.
    pub phase: TracePhase,
    /// Microseconds since the process trace epoch (monotonic).
    pub ts_us: u64,
    /// Small process-unique id of the recording thread.
    pub tid: u64,
    /// Up to [`MAX_ARGS`] arguments (leading `Some`s).
    pub args: [Option<Arg>; MAX_ARGS],
}

/// A fixed-capacity ring of events: push overwrites the oldest entry
/// once `capacity` is reached and counts what it dropped.
#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next overwrite position once the buffer is full.
    head: usize,
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self {
            // Lazily grown up to `capacity` — creating a ring (e.g. the
            // never-armed flight ring of an Off-mode process) is free.
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events in chronological (push) order.
    fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

struct TraceState {
    epoch: Instant,
    ring: Mutex<Ring>,
    flight: Mutex<Ring>,
    out_path: Mutex<Option<PathBuf>>,
    flight_path: Mutex<Option<PathBuf>>,
}

fn state() -> &'static TraceState {
    static STATE: OnceLock<TraceState> = OnceLock::new();
    STATE.get_or_init(|| TraceState {
        epoch: Instant::now(),
        ring: Mutex::new(Ring::new(DEFAULT_RING_CAPACITY)),
        flight: Mutex::new(Ring::new(FLIGHT_RING_CAPACITY)),
        out_path: Mutex::new(None),
        flight_path: Mutex::new(None),
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

const TRACE_UNSET: u8 = u8::MAX;
static TRACE_MODE: AtomicU8 = AtomicU8::new(TRACE_UNSET);

/// Parses a `QFAB_TRACE` value into a mode and optional output path.
/// Pure — exposed for tests; [`trace_mode`] applies it to the process.
pub fn parse_trace_env(value: &str) -> (TraceMode, Option<&str>) {
    match value {
        "on" | "1" => (TraceMode::Full, None),
        v => match v.strip_prefix("on:") {
            Some(path) if !path.is_empty() => (TraceMode::Full, Some(path)),
            _ => (TraceMode::Off, None),
        },
    }
}

fn init_from_env() -> TraceMode {
    let raw = std::env::var("QFAB_TRACE").unwrap_or_default();
    let (mode, path) = parse_trace_env(&raw);
    if let Some(p) = path {
        *lock(&state().out_path) = Some(PathBuf::from(p));
    }
    TRACE_MODE.store(mode as u8, Ordering::Relaxed);
    mode
}

/// The active trace mode (initialized from `QFAB_TRACE` on first call).
#[inline]
pub fn trace_mode() -> TraceMode {
    match TRACE_MODE.load(Ordering::Relaxed) {
        0 => TraceMode::Off,
        1 => TraceMode::Flight,
        2 => TraceMode::Full,
        _ => init_from_env(),
    }
}

/// Overrides the trace mode for the whole process.
pub fn set_trace_mode(mode: TraceMode) {
    TRACE_MODE.store(mode as u8, Ordering::Relaxed);
}

/// Whether full tracing (trace-ring export) is active.
#[inline]
pub fn trace_on() -> bool {
    trace_mode() == TraceMode::Full
}

/// Whether anything at all is recording (flight recorder or full).
#[inline]
fn armed() -> bool {
    trace_mode() != TraceMode::Off
}

/// Arms the flight recorder without enabling full tracing (no-op if
/// tracing is already on).
pub fn arm_flight_recorder() {
    if trace_mode() == TraceMode::Off {
        set_trace_mode(TraceMode::Flight);
    }
}

/// Enables full tracing with an explicit trace-ring capacity
/// (replacing any previously buffered events).
pub fn enable_full(capacity: usize) {
    let st = state();
    *lock(&st.ring) = Ring::new(capacity);
    set_trace_mode(TraceMode::Full);
}

/// Clears both rings (test isolation; mode is unchanged).
pub fn reset() {
    let st = state();
    lock(&st.ring).clear();
    lock(&st.flight).clear();
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn current_tid() -> u64 {
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

fn pack_args(args: &[Arg]) -> [Option<Arg>; MAX_ARGS] {
    let mut packed = [None; MAX_ARGS];
    for (slot, arg) in packed.iter_mut().zip(args) {
        *slot = Some(*arg);
    }
    packed
}

fn record(name: &'static str, phase: TracePhase, args: &[Arg]) {
    let st = state();
    let event = TraceEvent {
        name,
        phase,
        ts_us: u64::try_from(st.epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
        tid: current_tid(),
        args: pack_args(args),
    };
    if trace_on() {
        lock(&st.ring).push(event);
    }
    lock(&st.flight).push(event);
}

/// An RAII trace span: records a begin event now and the matching end
/// event on drop. Inert (one enum read on drop) when tracing is off.
#[derive(Debug)]
#[must_use = "a trace span records its end on drop; binding it to `_` ends it immediately"]
pub struct TraceSpan {
    name: Option<&'static str>,
}

impl TraceSpan {
    /// An inert span (never records).
    pub fn disabled() -> Self {
        Self { name: None }
    }

    /// Ends the span now, attaching `args` to the end event (for values
    /// only known at completion, e.g. a pass's gate delta).
    pub fn end_with_args(mut self, args: &[Arg]) {
        if let Some(name) = self.name.take() {
            record(name, TracePhase::End, args);
        }
    }
}

impl Drop for TraceSpan {
    #[inline]
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            record(name, TracePhase::End, &[]);
        }
    }
}

fn enter(name: &'static str, active: bool, args: &[Arg]) -> TraceSpan {
    if !active {
        return TraceSpan { name: None };
    }
    record(name, TracePhase::Begin, args);
    TraceSpan { name: Some(name) }
}

/// Starts a coarse span (records whenever tracing is armed at all).
#[inline]
pub fn span(name: &'static str) -> TraceSpan {
    enter(name, armed(), &[])
}

/// Starts a coarse span whose begin event carries `args` (at most
/// [`MAX_ARGS`]; extras are silently dropped).
#[inline]
pub fn span_args(name: &'static str, args: &[Arg]) -> TraceSpan {
    enter(name, armed(), args)
}

/// Starts a hot-path span: records only under full tracing, so the
/// always-on flight recorder never pays for per-shot events.
#[inline]
pub fn span_detail(name: &'static str) -> TraceSpan {
    enter(name, trace_on(), &[])
}

/// [`span_detail`] with begin-event arguments.
#[inline]
pub fn span_detail_args(name: &'static str, args: &[Arg]) -> TraceSpan {
    enter(name, trace_on(), args)
}

/// Records a coarse instant event.
#[inline]
pub fn instant(name: &'static str) {
    if armed() {
        record(name, TracePhase::Instant, &[]);
    }
}

/// Records a coarse instant event with arguments.
#[inline]
pub fn instant_args(name: &'static str, args: &[Arg]) {
    if armed() {
        record(name, TracePhase::Instant, args);
    }
}

/// Records a hot-path instant event (full tracing only).
#[inline]
pub fn instant_detail_args(name: &'static str, args: &[Arg]) {
    if trace_on() {
        record(name, TracePhase::Instant, args);
    }
}

fn arg_json(value: ArgValue) -> Json {
    match value {
        ArgValue::U64(v) => Json::U64(v),
        ArgValue::I64(v) => Json::I64(v),
        ArgValue::F64(v) => Json::F64(v),
        ArgValue::Str(v) => Json::Str(v.to_string()),
    }
}

fn event_json(event: &TraceEvent, pid: u64) -> Json {
    let mut obj = vec![
        ("name".to_string(), Json::Str(event.name.to_string())),
        ("cat".to_string(), Json::Str("qfab".to_string())),
        (
            "ph".to_string(),
            Json::Str(event.phase.chrome().to_string()),
        ),
        ("ts".to_string(), Json::U64(event.ts_us)),
        ("pid".to_string(), Json::U64(pid)),
        ("tid".to_string(), Json::U64(event.tid)),
    ];
    if event.phase == TracePhase::Instant {
        // Thread-scoped instant, per the trace_event spec.
        obj.push(("s".to_string(), Json::Str("t".to_string())));
    }
    let args: Vec<(String, Json)> = event
        .args
        .iter()
        .flatten()
        .map(|(k, v)| (k.to_string(), arg_json(*v)))
        .collect();
    if !args.is_empty() {
        obj.push(("args".to_string(), Json::Obj(args)));
    }
    Json::Obj(obj)
}

/// Encodes events as a Chrome `trace_event` JSON object (the
/// `traceEvents` array format Perfetto and `chrome://tracing` load).
pub fn to_chrome_json(events: &[TraceEvent], dropped: u64) -> Json {
    let pid = std::process::id() as u64;
    Json::Obj(vec![
        (
            "traceEvents".to_string(),
            Json::Arr(events.iter().map(|e| event_json(e, pid)).collect()),
        ),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
        (
            "otherData".to_string(),
            Json::Obj(vec![
                ("schema".to_string(), Json::Str("qfab.trace.v1".to_string())),
                ("dropped".to_string(), Json::U64(dropped)),
            ]),
        ),
    ])
}

/// Snapshots the trace ring: `(events in chronological order, dropped)`.
pub fn snapshot_events() -> (Vec<TraceEvent>, u64) {
    let ring = lock(&state().ring);
    (ring.snapshot(), ring.dropped)
}

/// Writes the trace ring as Chrome trace JSON to `path`.
pub fn write_trace(path: &Path) -> std::io::Result<()> {
    let (events, dropped) = snapshot_events();
    std::fs::write(path, to_chrome_json(&events, dropped).encode_pretty())
}

/// Writes the trace to the `QFAB_TRACE=on:<path>` destination (or
/// `qfab_trace.json` when none was given) and returns the path.
/// `Ok(None)` when full tracing is not active.
pub fn write_configured_trace() -> std::io::Result<Option<PathBuf>> {
    if !trace_on() {
        return Ok(None);
    }
    let path = lock(&state().out_path)
        .clone()
        .unwrap_or_else(|| PathBuf::from("qfab_trace.json"));
    write_trace(&path)?;
    Ok(Some(path))
}

/// Installs (once) a panic hook that dumps the flight ring to
/// `dump_path`, arms the flight recorder, and retargets subsequent
/// dumps at `dump_path`. The previous panic hook still runs.
pub fn install_flight_recorder(dump_path: &Path) {
    *lock(&state().flight_path) = Some(dump_path.to_path_buf());
    arm_flight_recorder();
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let path = lock(&state().flight_path).clone();
            if let Some(path) = path {
                let message = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                let location = info
                    .location()
                    .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()));
                let _ = dump_flight(&path, Some((&message, location.as_deref())));
            }
            previous(info);
        }));
    });
}

/// Dumps the flight ring to `path` as Chrome trace JSON extended with a
/// `flightRecorder` block (`schema qfab.flightrec.v1`, optional panic
/// message/location). Used by the panic hook; callable directly for
/// tests and graceful shutdown paths.
pub fn dump_flight(path: &Path, panic: Option<(&str, Option<&str>)>) -> std::io::Result<()> {
    let (events, dropped) = {
        // try_lock: the panicking thread may itself hold the ring lock
        // (a panic mid-`record`); a partial dump beats a deadlock.
        match state().flight.try_lock() {
            Ok(ring) => (ring.snapshot(), ring.dropped),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                let ring = e.into_inner();
                (ring.snapshot(), ring.dropped)
            }
            Err(std::sync::TryLockError::WouldBlock) => (Vec::new(), 0),
        }
    };
    let mut doc = match to_chrome_json(&events, dropped) {
        Json::Obj(fields) => fields,
        _ => unreachable!("to_chrome_json returns an object"),
    };
    let mut rec = vec![(
        "schema".to_string(),
        Json::Str("qfab.flightrec.v1".to_string()),
    )];
    if let Some((message, location)) = panic {
        rec.push((
            "panic".to_string(),
            Json::Obj(vec![
                ("message".to_string(), Json::Str(message.to_string())),
                (
                    "location".to_string(),
                    location.map_or(Json::Null, |l| Json::Str(l.to_string())),
                ),
            ]),
        ));
    }
    doc.push(("flightRecorder".to_string(), Json::Obj(rec)));
    std::fs::write(path, Json::Obj(doc).encode_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exclusive_test_lock;

    #[test]
    fn parse_trace_env_values() {
        assert_eq!(parse_trace_env(""), (TraceMode::Off, None));
        assert_eq!(parse_trace_env("off"), (TraceMode::Off, None));
        assert_eq!(parse_trace_env("on"), (TraceMode::Full, None));
        assert_eq!(
            parse_trace_env("on:/tmp/t.json"),
            (TraceMode::Full, Some("/tmp/t.json"))
        );
        assert_eq!(parse_trace_env("on:"), (TraceMode::Off, None));
        assert_eq!(parse_trace_env("banana"), (TraceMode::Off, None));
    }

    #[test]
    fn off_mode_records_nothing() {
        let _guard = exclusive_test_lock();
        set_trace_mode(TraceMode::Off);
        reset();
        drop(span("test.off"));
        drop(span_args("test.off.args", &[("k", ArgValue::U64(1))]));
        drop(span_detail("test.off.hot"));
        instant("test.off.i");
        instant_args("test.off.ia", &[("k", ArgValue::U64(2))]);
        instant_detail_args("test.off.hi", &[]);
        let (events, dropped) = snapshot_events();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
        assert!(lock(&state().flight).snapshot().is_empty());
    }

    #[test]
    fn flight_mode_skips_hot_path_events() {
        let _guard = exclusive_test_lock();
        set_trace_mode(TraceMode::Flight);
        reset();
        drop(span("test.flight.coarse"));
        drop(span_detail("test.flight.hot"));
        instant_detail_args("test.flight.hot_i", &[]);
        set_trace_mode(TraceMode::Off);
        // Trace ring untouched (full tracing never armed) …
        assert!(snapshot_events().0.is_empty());
        // … flight ring holds exactly the coarse begin/end pair.
        let flight = lock(&state().flight).snapshot();
        assert_eq!(flight.len(), 2);
        assert!(flight.iter().all(|e| e.name == "test.flight.coarse"));
        reset();
    }

    #[test]
    fn spans_pair_up_with_monotonic_timestamps_and_args() {
        let _guard = exclusive_test_lock();
        enable_full(1024);
        reset();
        {
            let outer = span_args(
                "test.outer",
                &[("rate", ArgValue::F64(0.01)), ("depth", ArgValue::I64(-1))],
            );
            drop(span("test.inner"));
            instant_args("test.mark", &[("n", ArgValue::U64(7))]);
            outer.end_with_args(&[("gates", ArgValue::U64(42))]);
        }
        set_trace_mode(TraceMode::Off);
        let (events, dropped) = snapshot_events();
        assert_eq!(dropped, 0);
        let names: Vec<_> = events.iter().map(|e| (e.name, e.phase)).collect();
        assert_eq!(
            names,
            vec![
                ("test.outer", TracePhase::Begin),
                ("test.inner", TracePhase::Begin),
                ("test.inner", TracePhase::End),
                ("test.mark", TracePhase::Instant),
                ("test.outer", TracePhase::End),
            ]
        );
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert!(events.iter().all(|e| e.tid == events[0].tid));
        assert_eq!(events[0].args[0], Some(("rate", ArgValue::F64(0.01))));
        assert_eq!(events[0].args[1], Some(("depth", ArgValue::I64(-1))));
        assert_eq!(events[4].args[0], Some(("gates", ArgValue::U64(42))));
        reset();
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = Ring::new(3);
        let mk = |i: u64| TraceEvent {
            name: "e",
            phase: TracePhase::Instant,
            ts_us: i,
            tid: 1,
            args: [None; MAX_ARGS],
        };
        for i in 0..5 {
            ring.push(mk(i));
        }
        assert_eq!(ring.dropped, 2);
        let ts: Vec<u64> = ring.snapshot().iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn chrome_export_parses_and_has_required_fields() {
        let events = vec![
            TraceEvent {
                name: "phase.a",
                phase: TracePhase::Begin,
                ts_us: 10,
                tid: 1,
                args: pack_args(&[("shots", ArgValue::U64(64))]),
            },
            TraceEvent {
                name: "phase.a",
                phase: TracePhase::End,
                ts_us: 25,
                tid: 1,
                args: [None; MAX_ARGS],
            },
            TraceEvent {
                name: "mark",
                phase: TracePhase::Instant,
                ts_us: 30,
                tid: 2,
                args: [None; MAX_ARGS],
            },
        ];
        let doc = to_chrome_json(&events, 4);
        let parsed = Json::parse(&doc.encode_pretty()).unwrap();
        let Some(Json::Arr(items)) = parsed.get("traceEvents") else {
            panic!("missing traceEvents array");
        };
        assert_eq!(items.len(), 3);
        for item in items {
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(item.get(key).is_some(), "missing {key}: {item}");
            }
        }
        assert_eq!(items[0].get("ph").and_then(Json::as_str), Some("B"));
        assert_eq!(items[1].get("ph").and_then(Json::as_str), Some("E"));
        assert_eq!(items[2].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(items[2].get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(
            items[0]
                .get("args")
                .and_then(|a| a.get("shots"))
                .and_then(Json::as_u64),
            Some(64)
        );
        assert_eq!(
            parsed
                .get("otherData")
                .and_then(|o| o.get("dropped"))
                .and_then(Json::as_u64),
            Some(4)
        );
    }

    #[test]
    fn flight_dump_writes_panic_block() {
        let _guard = exclusive_test_lock();
        set_trace_mode(TraceMode::Flight);
        reset();
        drop(span("test.dump.work"));
        set_trace_mode(TraceMode::Off);
        let path = std::env::temp_dir().join(format!(
            "qfab_flight_test_{}.flightrec.json",
            std::process::id()
        ));
        dump_flight(&path, Some(("boom", Some("file.rs:1:1")))).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&text).unwrap();
        let rec = doc.get("flightRecorder").expect("flightRecorder block");
        assert_eq!(
            rec.get("schema").and_then(Json::as_str),
            Some("qfab.flightrec.v1")
        );
        assert_eq!(
            rec.get("panic")
                .and_then(|p| p.get("message"))
                .and_then(Json::as_str),
            Some("boom")
        );
        let Some(Json::Arr(items)) = doc.get("traceEvents") else {
            panic!("missing traceEvents");
        };
        assert_eq!(items.len(), 2, "begin+end of test.dump.work");
        let _ = std::fs::remove_file(&path);
        reset();
    }

    #[test]
    fn distinct_threads_get_distinct_tids() {
        let a = current_tid();
        let b = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, b);
    }
}
