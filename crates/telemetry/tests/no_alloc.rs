//! Guard: with telemetry off, the entire instrumentation fast path —
//! handle lookup, counter/gauge/histogram recording, span creation and
//! drop — performs zero heap allocations. The same holds for every
//! trace point with `QFAB_TRACE` unset: off-mode tracing is one relaxed
//! atomic load, no allocation, no lock.
//!
//! This file holds exactly one test so no concurrent test can allocate
//! while the window is being measured. The disabled live-monitor path
//! is covered too: with no monitor running, `monitor::active()` is one
//! relaxed atomic load and `publish_status_with` never even invokes
//! its closure.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn disabled_path_does_no_allocation() {
    use qfab_telemetry::trace::{self, ArgValue};

    qfab_telemetry::set_mode(qfab_telemetry::Mode::Off);
    trace::set_trace_mode(trace::TraceMode::Off);
    // Warm up the mode caches (the very first query may read the
    // environment, which allocates) before opening the window.
    assert!(!qfab_telemetry::enabled());
    assert!(!trace::trace_on());

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..1_000u64 {
        let c = qfab_telemetry::counter("noalloc.counter");
        c.add(i);
        c.incr();
        let g = qfab_telemetry::gauge("noalloc.gauge");
        g.set(i);
        let h = qfab_telemetry::histogram("noalloc.histogram");
        h.record(i);
        drop(h.span());
        drop(h.span_detail());
        drop(trace::span("noalloc.span"));
        drop(trace::span_args("noalloc.span", &[("i", ArgValue::U64(i))]));
        drop(trace::span_detail("noalloc.span"));
        drop(trace::span_detail_args(
            "noalloc.span",
            &[("i", ArgValue::U64(i))],
        ));
        trace::instant("noalloc.instant");
        trace::instant_args("noalloc.instant", &[("i", ArgValue::U64(i))]);
        trace::instant_detail_args("noalloc.instant", &[("i", ArgValue::U64(i))]);
        assert!(!qfab_telemetry::monitor::active());
        qfab_telemetry::monitor::publish_status_with(|| {
            panic!("status closure must not run without an active monitor")
        });
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled telemetry path allocated {} times",
        after - before
    );
}
