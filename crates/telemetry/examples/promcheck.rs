//! Validates Prometheus text exposition documents with the hand-rolled
//! checker in `qfab_telemetry::promtext` — the tool CI uses to prove a
//! scraped `/metrics` body parses clean.
//!
//! ```sh
//! curl -sf http://$addr/metrics -o metrics.txt
//! cargo run --release -p qfab-telemetry --example promcheck -- metrics.txt
//! ```
//!
//! Exits non-zero (naming the file and the offending line) on the
//! first document that fails validation.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: promcheck FILE...");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = qfab_telemetry::promtext::validate(&text) {
            eprintln!("{path}: invalid exposition: {e}");
            return ExitCode::FAILURE;
        }
        let samples = text
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .count();
        println!("{path}: ok ({samples} samples)");
    }
    ExitCode::SUCCESS
}
