#![warn(missing_docs)]

//! Sweep-as-a-service: store federation and the `repro serve` engine.
//!
//! Panel sweeps are embarrassingly parallel across content-addressed
//! cells (see `qfab-store` and the keying scheme in
//! `qfab-experiments::cache`), which makes scale-out mechanical: any
//! number of workers compute disjoint cell subsets into isolated shard
//! stores, and reconciliation is a pure union. This crate provides the
//! three pieces that turn that observation into a deployable service,
//! while staying deliberately ignorant of what the cell bytes *mean*:
//!
//! * [`merge`] — store federation: union N store directories into one,
//!   validating each incoming record (salt-checked via a caller-supplied
//!   validator), deduplicating by content digest with byte-identical
//!   payload verification, and interleaving `history.wal` run ledgers
//!   by sequence position with tail-dedup.
//! * [`job`] — the `qfab.job.v1` sweep-job schema (grid, scale, shots,
//!   seed) accepted by `POST /jobs`.
//! * [`queue`] — a WAL-framed durable job queue: every state transition
//!   is an fsync'd checksummed record, so a SIGKILL at any instant
//!   loses nothing already acknowledged, and jobs caught mid-run are
//!   re-queued on restart.
//! * [`service`] — the long-running loop: an HTTP front end (built on
//!   `qfab_telemetry::httpd`) accepting and reporting jobs, plus a
//!   dispatcher that shards each job across N worker subprocesses and
//!   merges their shard stores into the service store on completion.
//!
//! Everything experiment-specific — which panels a grid name expands
//! to, how a worker subprocess is invoked, how a finished job is
//! rendered into panel outputs — enters through [`service::Hooks`], so
//! the dependency arrow stays `qfab-experiments → qfab-serve` and this
//! crate needs only `qfab-store` and `qfab-telemetry` (zero external
//! dependencies, like the rest of the workspace).

pub mod job;
pub mod merge;
pub mod progress;
pub mod queue;
pub mod service;

pub use job::{JobSpec, JOB_SCHEMA};
pub use merge::{count_live, merge_stores, salt_validator, salts_validator, MergeReport};
pub use progress::{events_json, job_progress_json, stale_workers, EVENTS_SCHEMA, PROGRESS_SCHEMA};
pub use queue::{JobEntry, JobQueue, JobState, QUEUE_FILE};
pub use service::{start, Hooks, ServiceConfig, ServiceHandle, SERVICE_FILE};
