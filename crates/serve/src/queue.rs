//! Crash-durable job queue: a WAL of fsync'd state-transition events.
//!
//! The queue never rewrites state in place. Every transition —
//! submitted, running, done, failed — appends one checksummed
//! `qfab.jobq.v1` record to `jobs.wal` and syncs it *before* the caller
//! proceeds (in particular, before the HTTP 200 for a submission goes
//! out). Replay on open folds the event log into current state; a job
//! that was `running` when the process died is re-queued, which is safe
//! because workers are idempotent — their shard stores are caches, so a
//! re-run recomputes only what never hit the disk.

use crate::job::JobSpec;
use qfab_store::wal::{encode_record, scan};
use qfab_store::{blake2s256, to_hex};
use qfab_telemetry::Json;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;

/// Event-log file name inside the service store directory.
pub const QUEUE_FILE: &str = "jobs.wal";

/// Schema tag carried by every queue event record.
pub const QUEUE_SCHEMA: &str = "qfab.jobq.v1";

/// Lifecycle state of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and durably recorded; waiting for the dispatcher.
    Queued,
    /// Workers are computing its shards.
    Running,
    /// Shards merged, outputs rendered.
    Done,
    /// A worker or the merge failed; shard stores are kept for resume.
    Failed,
}

impl JobState {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    fn from_str(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" | "submitted" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            _ => return None,
        })
    }

    /// True for `Done` / `Failed`.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// Current state of one job, folded from its event records.
#[derive(Clone, Debug)]
pub struct JobEntry {
    /// Stable identifier (`j<seq>-<digest prefix>`).
    pub id: String,
    /// What to sweep.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Total cells the job covers (workers × instances × grid points),
    /// recorded at submission by the validating hook.
    pub cells_total: u64,
    /// Free-form completion note (set on `Done`).
    pub note: String,
    /// Failure detail (set on `Failed`).
    pub error: String,
}

/// The durable queue: an append handle over `jobs.wal` plus the folded
/// in-memory state.
pub struct JobQueue {
    file: File,
    jobs: Vec<JobEntry>,
    seq: u64,
    /// Jobs found mid-run during replay and re-queued.
    resumed: usize,
}

fn event_json(id: &str, state: JobState, entry: Option<&JobEntry>, detail: &str) -> Json {
    let mut fields = vec![
        ("schema".to_string(), Json::Str(QUEUE_SCHEMA.to_string())),
        ("id".to_string(), Json::Str(id.to_string())),
        ("state".to_string(), Json::Str(state.as_str().to_string())),
    ];
    if let Some(entry) = entry {
        fields.push(("job".to_string(), entry.spec.to_json()));
        fields.push(("cells".to_string(), Json::U64(entry.cells_total)));
    }
    if !detail.is_empty() {
        fields.push(("detail".to_string(), Json::Str(detail.to_string())));
    }
    Json::Obj(fields)
}

impl JobQueue {
    /// Opens (creating if needed) the queue at `dir/jobs.wal` and
    /// replays its event log. Jobs whose last event was `running` are
    /// re-queued; a torn tail (process killed mid-append) is truncated
    /// to the intact prefix, exactly like the result store's journal.
    pub fn open(dir: &Path) -> io::Result<JobQueue> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(QUEUE_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let out = scan(&bytes);
        let mut jobs: Vec<JobEntry> = Vec::new();
        for record in &out.records {
            let Ok(text) = std::str::from_utf8(&record.value) else {
                continue;
            };
            let Ok(doc) = Json::parse(text) else { continue };
            let Some(id) = doc.get("id").and_then(Json::as_str) else {
                continue;
            };
            let Some(state) = doc
                .get("state")
                .and_then(Json::as_str)
                .and_then(JobState::from_str)
            else {
                continue;
            };
            let detail = doc.get("detail").and_then(Json::as_str).unwrap_or("");
            if let Some(entry) = jobs.iter_mut().find(|j| j.id == id) {
                entry.state = state;
                match state {
                    JobState::Done => entry.note = detail.to_string(),
                    JobState::Failed => entry.error = detail.to_string(),
                    _ => {}
                }
            } else if let Some(job) = doc.get("job") {
                // First sight of this id must be a submission record.
                let Ok(spec) = JobSpec::from_json(job, 0) else {
                    continue;
                };
                let cells_total = doc.get("cells").and_then(Json::as_u64).unwrap_or(0);
                jobs.push(JobEntry {
                    id: id.to_string(),
                    spec,
                    state,
                    cells_total,
                    note: String::new(),
                    error: String::new(),
                });
            }
        }
        let mut resumed = 0;
        for job in &mut jobs {
            if job.state == JobState::Running {
                job.state = JobState::Queued;
                resumed += 1;
            }
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if out.was_truncated() {
            file.set_len(out.clean_len)?;
            file = OpenOptions::new().append(true).open(&path)?;
        }
        let seq = jobs.len() as u64;
        Ok(JobQueue {
            file,
            jobs,
            seq,
            resumed,
        })
    }

    /// How many jobs replay found mid-run and re-queued.
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// All jobs, oldest first.
    pub fn jobs(&self) -> &[JobEntry] {
        &self.jobs
    }

    /// Looks a job up by id.
    pub fn get(&self, id: &str) -> Option<&JobEntry> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Oldest job still waiting for a dispatcher slot.
    pub fn next_queued(&self) -> Option<&JobEntry> {
        self.jobs.iter().find(|j| j.state == JobState::Queued)
    }

    fn append(&mut self, doc: &Json) -> io::Result<()> {
        let payload = doc.encode().into_bytes();
        let key = blake2s256(&payload);
        self.file.write_all(&encode_record(&key, &payload))?;
        // Durability before acknowledgement: the record must survive a
        // SIGKILL the instant this returns.
        self.file.sync_all()
    }

    /// Durably enqueues a job and returns its id. The record is synced
    /// before this returns, so an acknowledged submission survives any
    /// crash.
    pub fn submit(&mut self, spec: JobSpec, cells_total: u64) -> io::Result<String> {
        let digest = to_hex(&blake2s256(spec.to_json().encode().as_bytes()));
        let id = format!("j{:04}-{}", self.seq, &digest[..8]);
        self.seq += 1;
        let entry = JobEntry {
            id: id.clone(),
            spec,
            state: JobState::Queued,
            cells_total,
            note: String::new(),
            error: String::new(),
        };
        self.append(&event_json(&id, JobState::Queued, Some(&entry), ""))?;
        self.jobs.push(entry);
        Ok(id)
    }

    fn transition(&mut self, id: &str, state: JobState, detail: &str) -> io::Result<()> {
        let Some(pos) = self.jobs.iter().position(|j| j.id == id) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no job '{id}'"),
            ));
        };
        self.append(&event_json(id, state, None, detail))?;
        let entry = &mut self.jobs[pos];
        entry.state = state;
        match state {
            JobState::Done => entry.note = detail.to_string(),
            JobState::Failed => entry.error = detail.to_string(),
            _ => {}
        }
        Ok(())
    }

    /// Records that the dispatcher picked the job up.
    pub fn mark_running(&mut self, id: &str) -> io::Result<()> {
        self.transition(id, JobState::Running, "")
    }

    /// Records successful completion with a note (e.g. the output dir).
    pub fn mark_done(&mut self, id: &str, note: &str) -> io::Result<()> {
        self.transition(id, JobState::Done, note)
    }

    /// Records failure with the error detail; shard stores are kept so
    /// a resubmission resumes from their cached cells.
    pub fn mark_failed(&mut self, id: &str, error: &str) -> io::Result<()> {
        self.transition(id, JobState::Failed, error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qfab_queue_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec(grid: &str) -> JobSpec {
        JobSpec {
            grid: vec![grid.to_string()],
            scale: "quick".into(),
            instances: None,
            shots: None,
            seed: 7,
            shots_ledger: false,
        }
    }

    #[test]
    fn submissions_survive_reopen() {
        let dir = tmp("reopen");
        let id = {
            let mut q = JobQueue::open(&dir).unwrap();
            q.submit(spec("fig1"), 64).unwrap()
            // Dropped without any tidy shutdown — the WAL is the truth.
        };
        let q = JobQueue::open(&dir).unwrap();
        let job = q.get(&id).expect("job replayed");
        assert_eq!(job.state, JobState::Queued);
        assert_eq!(job.cells_total, 64);
        assert_eq!(job.spec, spec("fig1"));
        assert_eq!(q.resumed(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn running_jobs_requeue_on_replay() {
        let dir = tmp("requeue");
        let (done_id, running_id) = {
            let mut q = JobQueue::open(&dir).unwrap();
            let a = q.submit(spec("fig1"), 8).unwrap();
            let b = q.submit(spec("fig2"), 8).unwrap();
            q.mark_running(&a).unwrap();
            q.mark_done(&a, "out/a").unwrap();
            q.mark_running(&b).unwrap();
            (a, b)
            // Process "dies" here with b mid-run.
        };
        let q = JobQueue::open(&dir).unwrap();
        assert_eq!(q.get(&done_id).unwrap().state, JobState::Done);
        assert_eq!(q.get(&done_id).unwrap().note, "out/a");
        assert_eq!(q.get(&running_id).unwrap().state, JobState::Queued);
        assert_eq!(q.resumed(), 1);
        assert_eq!(q.next_queued().unwrap().id, running_id);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = tmp("torn");
        let id = {
            let mut q = JobQueue::open(&dir).unwrap();
            q.submit(spec("fig1"), 8).unwrap()
        };
        // A crash mid-append leaves garbage past the intact prefix.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(QUEUE_FILE))
            .unwrap();
        f.write_all(&[0x13, 0x37]).unwrap();
        drop(f);
        {
            let mut q = JobQueue::open(&dir).unwrap();
            assert_eq!(q.jobs().len(), 1);
            q.mark_running(&id).unwrap();
            q.mark_failed(&id, "worker 1 exited with 1").unwrap();
        }
        let q = JobQueue::open(&dir).unwrap();
        let job = q.get(&id).unwrap();
        assert_eq!(job.state, JobState::Failed);
        assert_eq!(job.error, "worker 1 exited with 1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ids_are_unique_and_fifo_order_is_kept() {
        let dir = tmp("fifo");
        let mut q = JobQueue::open(&dir).unwrap();
        // Identical specs still get distinct ids (sequence prefix).
        let a = q.submit(spec("fig1"), 8).unwrap();
        let b = q.submit(spec("fig1"), 8).unwrap();
        assert_ne!(a, b);
        assert_eq!(q.next_queued().unwrap().id, a);
        q.mark_running(&a).unwrap();
        assert_eq!(q.next_queued().unwrap().id, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_job_transitions_error() {
        let dir = tmp("unknown");
        let mut q = JobQueue::open(&dir).unwrap();
        assert!(q.mark_done("j9999-deadbeef", "x").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
