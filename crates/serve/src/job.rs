//! The `qfab.job.v1` sweep-job schema accepted by `POST /jobs`.
//!
//! A job names *what* to sweep (a grid of panel identifiers) and at
//! *which* scale; everything else — how a grid name expands to panels,
//! what the scale presets mean — is resolved by the experiments layer
//! through [`crate::service::Hooks`]. Keeping the wire schema this
//! small is what lets the service re-run a job byte-identically: the
//! spec plus the code-version salt fully determines every cell key.

use qfab_telemetry::Json;

/// Schema tag carried by job documents.
pub const JOB_SCHEMA: &str = "qfab.job.v1";

/// A sweep job: which panels, at what scale, from which seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Panel identifiers (or grid aliases like `fig1` / `all`) to sweep.
    pub grid: Vec<String>,
    /// Scale preset: `quick`, `default`, or `paper`.
    pub scale: String,
    /// Override for instances per panel (preset value when absent).
    pub instances: Option<u64>,
    /// Override for shots per instance (preset value when absent).
    pub shots: Option<u64>,
    /// Base RNG seed.
    pub seed: u64,
    /// Whether workers also record per-shot provenance (`qfab.shots.v1`
    /// records) alongside the result cells. Never changes the cells.
    pub shots_ledger: bool,
}

impl JobSpec {
    /// Canonical JSON encoding (stable field order — the job id is the
    /// digest of this encoding plus a submission sequence number).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".to_string(), Json::Str(JOB_SCHEMA.to_string())),
            (
                "grid".to_string(),
                Json::Arr(self.grid.iter().map(|g| Json::Str(g.clone())).collect()),
            ),
            ("scale".to_string(), Json::Str(self.scale.clone())),
        ];
        if let Some(i) = self.instances {
            fields.push(("instances".to_string(), Json::U64(i)));
        }
        if let Some(s) = self.shots {
            fields.push(("shots".to_string(), Json::U64(s)));
        }
        // Encoded only when set so pre-existing job ids (digests of this
        // encoding) are unchanged for jobs that never asked for it.
        if self.shots_ledger {
            fields.push(("shots_ledger".to_string(), Json::Bool(true)));
        }
        fields.push(("seed".to_string(), Json::U64(self.seed)));
        Json::Obj(fields)
    }

    /// Decodes a job document. The `schema` field is optional but
    /// checked when present; `grid` is required and must be non-empty;
    /// `scale` defaults to `quick`; `seed` defaults to `default_seed`.
    pub fn from_json(doc: &Json, default_seed: u64) -> Result<JobSpec, String> {
        if let Some(schema) = doc.get("schema") {
            let schema = schema.as_str().ok_or("schema must be a string")?;
            if schema != JOB_SCHEMA {
                return Err(format!("unsupported schema '{schema}' (want {JOB_SCHEMA})"));
            }
        }
        let grid = match doc.get("grid") {
            Some(Json::Arr(items)) => {
                let mut grid = Vec::with_capacity(items.len());
                for item in items {
                    grid.push(
                        item.as_str()
                            .ok_or("grid entries must be strings")?
                            .to_string(),
                    );
                }
                grid
            }
            Some(Json::Str(one)) => vec![one.clone()],
            Some(_) => return Err("grid must be a string or array of strings".to_string()),
            None => return Err("job has no grid".to_string()),
        };
        if grid.is_empty() {
            return Err("grid is empty".to_string());
        }
        let scale = match doc.get("scale") {
            Some(s) => s.as_str().ok_or("scale must be a string")?.to_string(),
            None => "quick".to_string(),
        };
        let field_u64 = |name: &str| -> Result<Option<u64>, String> {
            match doc.get(name) {
                Some(v) => {
                    Ok(Some(v.as_u64().ok_or_else(|| {
                        format!("{name} must be a non-negative integer")
                    })?))
                }
                None => Ok(None),
            }
        };
        let instances = field_u64("instances")?;
        if instances == Some(0) {
            return Err("instances must be positive".to_string());
        }
        let shots = field_u64("shots")?;
        if shots == Some(0) {
            return Err("shots must be positive".to_string());
        }
        let shots_ledger = match doc.get("shots_ledger") {
            Some(v) => v.as_bool().ok_or("shots_ledger must be a boolean")?,
            None => false,
        };
        let seed = field_u64("seed")?.unwrap_or(default_seed);
        Ok(JobSpec {
            grid,
            scale,
            instances,
            shots,
            seed,
            shots_ledger,
        })
    }

    /// Parses a raw request body as a job document.
    pub fn parse(body: &[u8], default_seed: u64) -> Result<JobSpec, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let doc = Json::parse(text).map_err(|e| format!("body is not JSON: {e}"))?;
        Self::from_json(&doc, default_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let spec = JobSpec {
            grid: vec!["fig1".into(), "f2-mul".into()],
            scale: "default".into(),
            instances: Some(12),
            shots: None,
            seed: 42,
            shots_ledger: true,
        };
        let back = JobSpec::from_json(&spec.to_json(), 0).unwrap();
        assert_eq!(back, spec);
        assert!(spec.to_json().encode().contains("qfab.job.v1"));
        // The flag is elided when false, keeping legacy job encodings
        // (and therefore job-id digests) byte-identical.
        let mut plain = spec.clone();
        plain.shots_ledger = false;
        assert!(!plain.to_json().encode().contains("shots_ledger"));
    }

    #[test]
    fn defaults_fill_scale_and_seed() {
        let spec = JobSpec::parse(br#"{"grid":["fig1"]}"#, 777).unwrap();
        assert_eq!(spec.scale, "quick");
        assert_eq!(spec.seed, 777);
        assert_eq!(spec.instances, None);
        assert_eq!(spec.shots, None);
        assert!(!spec.shots_ledger);
    }

    #[test]
    fn a_bare_string_grid_is_accepted() {
        let spec = JobSpec::parse(br#"{"grid":"all"}"#, 1).unwrap();
        assert_eq!(spec.grid, vec!["all".to_string()]);
    }

    #[test]
    fn malformed_jobs_are_rejected_with_reasons() {
        for (body, needle) in [
            (&br#"not json"#[..], "not JSON"),
            (br#"{}"#, "no grid"),
            (br#"{"grid":[]}"#, "empty"),
            (br#"{"grid":[1]}"#, "strings"),
            (
                br#"{"grid":["fig1"],"schema":"qfab.job.v2"}"#,
                "unsupported schema",
            ),
            (br#"{"grid":["fig1"],"instances":0}"#, "positive"),
            (br#"{"grid":["fig1"],"shots":0}"#, "positive"),
            (br#"{"grid":["fig1"],"seed":-3}"#, "non-negative"),
            (br#"{"grid":["fig1"],"shots_ledger":1}"#, "boolean"),
        ] {
            let err = JobSpec::parse(body, 1).unwrap_err();
            assert!(
                err.contains(needle),
                "body {:?}: error {err:?} missing {needle:?}",
                String::from_utf8_lossy(body)
            );
        }
    }
}
