//! Store federation: union N store directories into one.
//!
//! Two deployments that ran overlapping sweeps hold overlapping sets of
//! content-addressed records; because a key is the digest of the cell's
//! full identity, reconciliation is a set union with three invariants:
//!
//! * **validated** — every record *new to the destination* must pass
//!   the caller's validator (for `repro merge` that is a `CODE_SALT`
//!   check on the payload identity); failures are counted and skipped,
//!   never written.
//! * **digest-deduplicated** — a key already live in the destination is
//!   not rewritten. First writer wins; the incoming payload is byte-
//!   compared and counted as a `duplicate` when identical or a
//!   `conflict` when it differs (which, under honest content
//!   addressing, means someone's store is lying).
//! * **ledger-interleaved** — `history.wal` run ledgers merge by
//!   sequence position across sources (entry 0 of each source in
//!   argument order, then entry 1, ...), skipping consecutive duplicate
//!   digests exactly like the single-store tail-dedup rule.
//!
//! Sources are read with the same prefix-truncating scan the store
//! itself recovers with, so a torn shard store (worker killed
//! mid-append) merges cleanly: its intact prefix contributes, its torn
//! tail is counted and ignored.

use qfab_store::wal::{encode_record, scan, Key, Record};
use qfab_store::Store;
use qfab_telemetry::Json;
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Store file names mirrored from `qfab-store` / the experiments
/// ledger; the merge operates on raw files, not open stores.
const INDEX_FILE: &str = "index.seg";
const JOURNAL_FILE: &str = "journal.wal";
const HISTORY_FILE: &str = "history.wal";

/// What a merge did, per category.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Source directories read.
    pub sources: usize,
    /// Records newly written into the destination.
    pub added: u64,
    /// Incoming records whose key was already live with a byte-identical
    /// payload.
    pub duplicates: u64,
    /// Incoming records whose key was already live with a *different*
    /// payload — kept as-is (first writer wins), but loudly counted.
    pub conflicts: u64,
    /// Incoming records rejected by the validator (e.g. salt mismatch).
    pub rejected: u64,
    /// Ledger entries appended to the destination's `history.wal`.
    pub ledger_appended: u64,
    /// Ledger entries skipped as consecutive duplicates.
    pub ledger_deduped: u64,
    /// Sources whose store or ledger files carried a torn tail (their
    /// intact prefix still merged).
    pub truncated_sources: u64,
}

impl MergeReport {
    /// Human-readable summary for the `repro merge` output.
    pub fn format(&self) -> String {
        let mut s = format!(
            "merged {} source store(s): {} added, {} duplicate, {} conflicting, {} rejected",
            self.sources, self.added, self.duplicates, self.conflicts, self.rejected
        );
        s.push_str(&format!(
            "\nledger: {} appended, {} deduplicated",
            self.ledger_appended, self.ledger_deduped
        ));
        if self.truncated_sources > 0 {
            s.push_str(&format!(
                "\n{} source(s) had torn tails (intact prefix merged)",
                self.truncated_sources
            ));
        }
        s
    }
}

/// A validator accepting records whose payload identity carries the
/// expected code-version salt (`payload.id.salt == expected`).
///
/// This is the `repro merge` policy: records from a store written under
/// a different simulation semantics version must not leak into a merged
/// store, where they would be unreachable cache entries at best and a
/// provenance lie at worst.
pub fn salt_validator(expected: &str) -> impl Fn(&Key, &[u8]) -> Result<(), String> + '_ {
    move |_key, payload| {
        let salt = payload_salt(payload)?;
        if salt != expected {
            return Err(format!("salt '{salt}' != expected '{expected}'"));
        }
        Ok(())
    }
}

/// Multi-family variant of [`salt_validator`]: accepts a record whose
/// `id.salt` matches *any* entry of `expected`.
///
/// One store can hold sibling record families written under the same
/// simulation semantics — cell results and shot-provenance records, for
/// example — and a federation merge must carry all of them, while still
/// rejecting records from a different code version.
pub fn salts_validator<S: AsRef<str>>(
    expected: &[S],
) -> impl Fn(&Key, &[u8]) -> Result<(), String> + '_ {
    move |_key, payload| {
        let salt = payload_salt(payload)?;
        if expected.iter().any(|e| e.as_ref() == salt) {
            return Ok(());
        }
        let accepted: Vec<&str> = expected.iter().map(AsRef::as_ref).collect();
        Err(format!("salt '{salt}' not in accepted set {accepted:?}"))
    }
}

/// Extracts `id.salt` from a JSON payload, the provenance field every
/// mergeable record family carries.
fn payload_salt(payload: &[u8]) -> Result<String, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| format!("payload is not JSON: {e}"))?;
    doc.get("id")
        .and_then(|id| id.get("salt"))
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| "payload has no id.salt".to_string())
}

/// Reads a source directory's live records: segment replayed first,
/// journal on top (later appends win), both truncated to their intact
/// prefix. Returns the live map plus whether either file had a torn
/// tail.
fn read_live(dir: &Path) -> io::Result<(BTreeMap<Key, Vec<u8>>, bool)> {
    let mut live = BTreeMap::new();
    let mut torn = false;
    for name in [INDEX_FILE, JOURNAL_FILE] {
        let bytes = match std::fs::read(dir.join(name)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        let out = scan(&bytes);
        torn |= out.was_truncated();
        for r in out.records {
            live.insert(r.key, r.value);
        }
    }
    Ok((live, torn))
}

/// Reads a directory's raw ledger records (empty when absent), plus
/// whether the ledger had a torn tail.
fn read_ledger(dir: &Path) -> io::Result<(Vec<Record>, bool)> {
    let bytes = match std::fs::read(dir.join(HISTORY_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), false)),
        Err(e) => return Err(e),
    };
    let out = scan(&bytes);
    let torn = out.was_truncated();
    Ok((out.records, torn))
}

/// Unions `sources` into the store at `dest` (created if needed).
///
/// Cell records merge key-sorted per source, sources in argument order;
/// `validate` gates every record not already live in the destination.
/// Run ledgers interleave by sequence position with consecutive-
/// duplicate dedup. The destination is synced and compacted before
/// returning, so a successful merge leaves a clean single-segment
/// store.
pub fn merge_stores(
    sources: &[PathBuf],
    dest: &Path,
    validate: impl Fn(&Key, &[u8]) -> Result<(), String>,
) -> io::Result<MergeReport> {
    let mut report = MergeReport {
        sources: sources.len(),
        ..MergeReport::default()
    };
    let mut store = Store::open(dest.to_path_buf())?;
    for src in sources {
        let (live, torn) = read_live(src)?;
        let (_, ledger_torn) = read_ledger(src)?;
        if torn || ledger_torn {
            report.truncated_sources += 1;
        }
        for (key, value) in live {
            match store.get(&key) {
                Some(existing) => {
                    if existing == value.as_slice() {
                        report.duplicates += 1;
                    } else {
                        report.conflicts += 1;
                    }
                }
                None => match validate(&key, &value) {
                    Ok(()) => {
                        store.put(key, value)?;
                        report.added += 1;
                    }
                    Err(_) => report.rejected += 1,
                },
            }
        }
        store.sync()?;
    }
    store.compact()?;
    drop(store);
    let (appended, deduped) = merge_ledgers(sources, dest)?;
    report.ledger_appended = appended;
    report.ledger_deduped = deduped;
    Ok(report)
}

/// Interleaves the sources' `history.wal` ledgers into the
/// destination's, by sequence position: entry 0 of every source (in
/// argument order), then entry 1, and so on — so the merged history
/// reads like the deployments ran side by side. An entry whose digest
/// equals the previously appended one is skipped (the same tail-dedup
/// rule `repro` applies when recording a sweep). Returns
/// `(appended, deduped)`.
fn merge_ledgers(sources: &[PathBuf], dest: &Path) -> io::Result<(u64, u64)> {
    let mut per_source = Vec::with_capacity(sources.len());
    for src in sources {
        per_source.push(read_ledger(src)?.0);
    }
    let max_len = per_source.iter().map(Vec::len).max().unwrap_or(0);
    if max_len == 0 {
        return Ok((0, 0));
    }
    let (dest_records, _) = read_ledger(dest)?;
    let mut last_key = dest_records.last().map(|r| r.key);
    let mut appended = 0u64;
    let mut deduped = 0u64;
    let mut out = Vec::new();
    for pos in 0..max_len {
        for records in &per_source {
            let Some(r) = records.get(pos) else { continue };
            if last_key == Some(r.key) {
                deduped += 1;
                continue;
            }
            out.extend_from_slice(&encode_record(&r.key, &r.value));
            last_key = Some(r.key);
            appended += 1;
        }
    }
    if appended > 0 {
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dest.join(HISTORY_FILE))?;
        file.write_all(&out)?;
        file.sync_all()?;
    }
    Ok((appended, deduped))
}

/// Counts the live keys of the store at `dir` without opening it for
/// writes — segment plus journal, later appends deduplicated. Used for
/// job progress: a worker's shard store grows by one record per
/// computed cell.
pub fn count_live(dir: &Path) -> io::Result<u64> {
    Ok(read_live(dir)?.0.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_store::blake2s256;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qfab_merge_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A minimal cell-like payload: `{"id":{"salt":S,"cell":N},"v":N}`,
    /// keyed by the digest of its identity — same shape the experiments
    /// layer writes, without depending on it.
    fn cell(salt: &str, n: u64) -> (Key, Vec<u8>) {
        let id = Json::Obj(vec![
            ("salt".into(), Json::Str(salt.into())),
            ("cell".into(), Json::U64(n)),
        ]);
        let key = blake2s256(id.encode().as_bytes());
        let payload = Json::Obj(vec![("id".into(), id), ("v".into(), Json::U64(n))])
            .encode()
            .into_bytes();
        (key, payload)
    }

    fn fill(dir: &Path, salt: &str, cells: std::ops::Range<u64>) {
        let mut s = Store::open(dir.to_path_buf()).unwrap();
        for n in cells {
            let (k, v) = cell(salt, n);
            s.put(k, v).unwrap();
        }
        s.sync().unwrap();
    }

    #[test]
    fn disjoint_sources_union_cleanly() {
        let a = tmp("dis_a");
        let b = tmp("dis_b");
        let dest = tmp("dis_dest");
        fill(&a, "v2", 0..5);
        fill(&b, "v2", 5..9);
        let report = merge_stores(&[a.clone(), b.clone()], &dest, salt_validator("v2")).unwrap();
        assert_eq!(report.added, 9);
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.conflicts, 0);
        assert_eq!(report.rejected, 0);
        assert_eq!(count_live(&dest).unwrap(), 9);
        // Every payload survives byte-identically.
        let merged = Store::open(dest.clone()).unwrap();
        for n in 0..9 {
            let (k, v) = cell("v2", n);
            assert_eq!(merged.get(&k), Some(v.as_slice()), "cell {n}");
        }
        for d in [a, b, dest] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn overlap_dedups_and_verifies_payload_bytes() {
        let a = tmp("dup_a");
        let b = tmp("dup_b");
        let dest = tmp("dup_dest");
        fill(&a, "v2", 0..6);
        fill(&b, "v2", 3..8); // 3..6 overlap, byte-identical by construction
        let report = merge_stores(&[a.clone(), b.clone()], &dest, salt_validator("v2")).unwrap();
        assert_eq!(report.added, 8);
        assert_eq!(report.duplicates, 3);
        assert_eq!(report.conflicts, 0);
        assert_eq!(count_live(&dest).unwrap(), 8);

        // A lying store: same key, different payload. First writer wins
        // and the clash is counted as a conflict, not silently absorbed.
        let c = tmp("dup_c");
        {
            let (k, _) = cell("v2", 0);
            let mut s = Store::open(c.clone()).unwrap();
            s.put(k, b"imposter".to_vec()).unwrap();
            s.sync().unwrap();
        }
        let report = merge_stores(std::slice::from_ref(&c), &dest, salt_validator("v2")).unwrap();
        assert_eq!(report.conflicts, 1);
        assert_eq!(report.added, 0);
        let merged = Store::open(dest.clone()).unwrap();
        let (k, v) = cell("v2", 0);
        assert_eq!(merged.get(&k), Some(v.as_slice()), "first writer kept");
        for d in [a, b, c, dest] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn salt_mismatches_are_rejected_with_counts() {
        let a = tmp("salt_a");
        let dest = tmp("salt_dest");
        fill(&a, "v2", 0..4);
        fill(&a, "v1", 100..103); // stale records in the same store
        let report = merge_stores(std::slice::from_ref(&a), &dest, salt_validator("v2")).unwrap();
        assert_eq!(report.added, 4);
        assert_eq!(report.rejected, 3);
        assert_eq!(count_live(&dest).unwrap(), 4);
        // The stale records never reached the destination.
        let merged = Store::open(dest.clone()).unwrap();
        let (stale_key, _) = cell("v1", 100);
        assert!(merged.get(&stale_key).is_none());
        for d in [a, dest] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn torn_tail_shard_store_merges_its_intact_prefix() {
        let a = tmp("torn_a");
        let dest = tmp("torn_dest");
        fill(&a, "v2", 0..5);
        // Simulate a worker SIGKILLed mid-append: garbage at the
        // journal tail.
        let mut f = OpenOptions::new()
            .append(true)
            .open(a.join(JOURNAL_FILE))
            .unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        drop(f);
        let report = merge_stores(std::slice::from_ref(&a), &dest, salt_validator("v2")).unwrap();
        assert_eq!(report.added, 5);
        assert_eq!(report.truncated_sources, 1);
        assert_eq!(count_live(&dest).unwrap(), 5);
        // The merged store is structurally clean despite the torn source.
        let v = qfab_store::verify_dir(&dest, |_, _| Ok(())).unwrap();
        assert!(v.is_clean(), "{:?}", v.issues);
        for d in [a, dest] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    fn ledger_entry(tag: u64) -> (Key, Vec<u8>) {
        let payload = Json::Obj(vec![("run".into(), Json::U64(tag))])
            .encode()
            .into_bytes();
        (blake2s256(&payload), payload)
    }

    fn write_ledger(dir: &Path, tags: &[u64]) {
        let mut bytes = Vec::new();
        for &t in tags {
            let (k, v) = ledger_entry(t);
            bytes.extend_from_slice(&encode_record(&k, &v));
        }
        std::fs::write(dir.join(HISTORY_FILE), bytes).unwrap();
    }

    fn ledger_tags(dir: &Path) -> Vec<u64> {
        let (records, _) = read_ledger(dir).unwrap();
        records
            .iter()
            .map(|r| {
                Json::parse(std::str::from_utf8(&r.value).unwrap())
                    .unwrap()
                    .get("run")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn ledgers_interleave_by_sequence_with_tail_dedup() {
        let a = tmp("led_a");
        let b = tmp("led_b");
        let dest = tmp("led_dest");
        write_ledger(&a, &[1, 2, 3]);
        write_ledger(&b, &[10, 20]);
        let report = merge_stores(&[a.clone(), b.clone()], &dest, salt_validator("v2")).unwrap();
        // Position-major: (1,10), (2,20), (3).
        assert_eq!(ledger_tags(&dest), vec![1, 10, 2, 20, 3]);
        assert_eq!(report.ledger_appended, 5);
        assert_eq!(report.ledger_deduped, 0);

        // Merging the same sources again dedups only consecutive
        // repeats: the first incoming entry (1) matches nothing at the
        // tail (3), so history legitimately repeats.
        let report = merge_stores(&[a.clone(), a.clone()], &dest, salt_validator("v2")).unwrap();
        // a interleaved with itself: 1,1,2,2,3,3 -> consecutive dups
        // collapse to 1,2,3.
        assert_eq!(report.ledger_appended, 3);
        assert_eq!(report.ledger_deduped, 3);
        assert_eq!(ledger_tags(&dest), vec![1, 10, 2, 20, 3, 1, 2, 3]);
        for d in [a, b, dest] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn ledger_dedup_extends_the_destination_tail() {
        let a = tmp("ledtail_a");
        let dest = tmp("ledtail_dest");
        write_ledger(&a, &[7]);
        write_ledger(&dest, &[5, 7]);
        let report = merge_stores(std::slice::from_ref(&a), &dest, salt_validator("v2")).unwrap();
        // The incoming 7 equals the destination's latest entry: skipped.
        assert_eq!(report.ledger_appended, 0);
        assert_eq!(report.ledger_deduped, 1);
        assert_eq!(ledger_tags(&dest), vec![5, 7]);
        for d in [a, dest] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn merge_into_populated_destination_is_idempotent() {
        let a = tmp("idem_a");
        let dest = tmp("idem_dest");
        fill(&a, "v2", 0..5);
        let first = merge_stores(std::slice::from_ref(&a), &dest, salt_validator("v2")).unwrap();
        assert_eq!(first.added, 5);
        let second = merge_stores(std::slice::from_ref(&a), &dest, salt_validator("v2")).unwrap();
        assert_eq!(second.added, 0);
        assert_eq!(second.duplicates, 5);
        assert_eq!(count_live(&dest).unwrap(), 5);
        for d in [a, dest] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }
}
