//! Federated job-progress aggregation: merging per-worker shard
//! observability (heartbeats, timelines, live cell counts) into the
//! job-level documents the service serves.
//!
//! Each worker subprocess runs the telemetry monitor into its shard
//! store: a `status.json` heartbeat (rewritten atomically every
//! sampling interval, so its mtime *is* the liveness signal) and a
//! `timeline.json` metric ring (`qfab.timeline.v1`). Workers never
//! talk to the service; this module reads those files and folds them
//! into:
//!
//! * [`job_progress_json`] — the `GET /jobs/{id}/progress` document:
//!   per-worker panel/cell progress, cache traffic, heartbeat age and
//!   staleness, plus merged totals and a job-level ETA;
//! * [`events_json`] — the `GET /jobs/{id}/events` long-poll payload:
//!   incremental timeline samples past an opaque cursor;
//! * [`append_prometheus`] — the `job`/`worker`-labelled series the
//!   service's `GET /metrics` appends to its own registry exposition.
//!
//! Everything here is read-only over files the workers already write;
//! a job run with no observer produces byte-identical results.

use crate::merge::count_live;
use crate::queue::{JobEntry, JobState};
use qfab_telemetry::{promtext, Json};
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Schema tag of `GET /jobs/{id}/progress` documents.
pub const PROGRESS_SCHEMA: &str = "qfab.jobprogress.v1";

/// Schema tag of `GET /jobs/{id}/events` documents.
pub const EVENTS_SCHEMA: &str = "qfab.jobevents.v1";

/// A worker is stale once its heartbeat file has not been rewritten
/// for more than this many sampling intervals. Three is forgiving
/// enough for scheduler hiccups but catches a SIGKILLed worker (whose
/// last heartbeat otherwise claims `running` forever) within a second
/// at the default 250 ms interval.
pub const STALE_INTERVALS: u64 = 3;

/// Fallback sampling interval when a worker's timeline has not landed
/// yet (mirrors `qfab_telemetry::monitor::DEFAULT_INTERVAL`).
const DEFAULT_INTERVAL_MS: u64 = 250;

/// Everything observable about one worker shard, read from its shard
/// store directory.
pub struct WorkerObs {
    /// Worker index (shard `w` of the job).
    pub worker: usize,
    /// The worker's last `qfab.status.v1` heartbeat, if one landed.
    pub status: Option<Json>,
    /// Milliseconds since the heartbeat file was last rewritten.
    pub heartbeat_age_ms: Option<u64>,
    /// The worker's sampling interval (from its timeline document,
    /// default 250 ms before the first sample lands).
    pub interval_ms: u64,
    /// The worker's `qfab.timeline.v1` ring, if one landed.
    pub timeline: Option<Json>,
    /// Cells durably committed to the shard store so far.
    pub cells_live: u64,
}

impl WorkerObs {
    /// Whether this worker's heartbeat has gone stale (present but not
    /// rewritten for more than [`STALE_INTERVALS`] sampling intervals —
    /// the signature of a killed or wedged worker). A worker with no
    /// heartbeat at all is *not* stale, merely unobserved.
    pub fn is_stale(&self) -> bool {
        match self.heartbeat_age_ms {
            Some(age) => age > STALE_INTERVALS * self.interval_ms,
            None => false,
        }
    }
}

fn file_age_ms(path: &Path) -> Option<u64> {
    let mtime = std::fs::metadata(path).ok()?.modified().ok()?;
    Some(
        SystemTime::now()
            .duration_since(mtime)
            .unwrap_or_default()
            .as_millis() as u64,
    )
}

fn read_json(path: &Path) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    Json::parse(&text).ok()
}

/// Reads one worker's observability files from its shard store.
pub fn observe_worker(shard_dir: &Path, worker: usize) -> WorkerObs {
    let status_path = shard_dir.join("status.json");
    let timeline = read_json(&shard_dir.join("timeline.json"));
    let interval_ms = timeline
        .as_ref()
        .and_then(|t| t.get("interval_ms"))
        .and_then(Json::as_u64)
        .unwrap_or(DEFAULT_INTERVAL_MS)
        .max(1);
    WorkerObs {
        worker,
        status: read_json(&status_path),
        heartbeat_age_ms: file_age_ms(&status_path),
        interval_ms,
        timeline,
        cells_live: count_live(shard_dir).unwrap_or(0),
    }
}

fn shard_dirs(store_dir: &Path, id: &str, workers: usize) -> Vec<PathBuf> {
    (0..workers)
        .map(|w| store_dir.join("shards").join(id).join(format!("w{w}")))
        .collect()
}

/// Reads every worker shard of a job.
pub fn observe_job(store_dir: &Path, id: &str, workers: usize) -> Vec<WorkerObs> {
    shard_dirs(store_dir, id, workers)
        .iter()
        .enumerate()
        .map(|(w, dir)| observe_worker(dir, w))
        .collect()
}

/// Indices of the job's stale workers (heartbeat present but older
/// than [`STALE_INTERVALS`] sampling intervals).
pub fn stale_workers(store_dir: &Path, id: &str, workers: usize) -> Vec<usize> {
    observe_job(store_dir, id, workers)
        .iter()
        .filter(|o| o.is_stale())
        .map(|o| o.worker)
        .collect()
}

fn status_u64(status: &Json, path: &[&str]) -> Option<u64> {
    let mut node = status;
    for key in path {
        node = node.get(key)?;
    }
    node.as_u64()
}

fn worker_json(obs: &WorkerObs) -> Json {
    let mut fields = vec![
        ("worker".to_string(), Json::U64(obs.worker as u64)),
        ("cells_live".to_string(), Json::U64(obs.cells_live)),
        (
            "heartbeat_age_ms".to_string(),
            match obs.heartbeat_age_ms {
                Some(a) => Json::U64(a),
                None => Json::Null,
            },
        ),
        ("interval_ms".to_string(), Json::U64(obs.interval_ms)),
        ("stale".to_string(), Json::Bool(obs.is_stale())),
    ];
    fields.push((
        "status".to_string(),
        obs.status.clone().unwrap_or(Json::Null),
    ));
    Json::Obj(fields)
}

/// Builds the merged `GET /jobs/{id}/progress` document: per-worker
/// observability plus totals that sum the shards back into the
/// single-process view (cells from the durable shard stores; current
/// panel instances/cells and cache traffic from the heartbeats; the
/// job-level ETA is the *slowest* worker's miss-aware ETA, since the
/// job finishes when its last shard does).
pub fn job_progress_json(entry: &JobEntry, store_dir: &Path, workers: usize) -> Json {
    let observed = observe_job(store_dir, &entry.id, workers);
    let cells_done = match entry.state {
        JobState::Done => entry.cells_total,
        _ => observed.iter().map(|o| o.cells_live).sum(),
    };
    let mut instances_done = 0u64;
    let mut instances_total = 0u64;
    let mut panel_cells_done = 0u64;
    let mut panel_cells_total = 0u64;
    let mut cache = [0u64; 4]; // hits, misses, rejected, append_failed
    let mut have_cache = false;
    let mut eta: Option<f64> = None;
    for obs in &observed {
        let Some(status) = &obs.status else { continue };
        instances_done += status_u64(status, &["panel", "instances", "done"]).unwrap_or(0);
        instances_total += status_u64(status, &["panel", "instances", "total"]).unwrap_or(0);
        panel_cells_done += status_u64(status, &["panel", "cells", "done"]).unwrap_or(0);
        panel_cells_total += status_u64(status, &["panel", "cells", "total"]).unwrap_or(0);
        for (slot, key) in cache
            .iter_mut()
            .zip(["hits", "misses", "rejected", "append_failed"])
        {
            if let Some(v) = status_u64(status, &["panel", "cache", key]) {
                *slot += v;
                have_cache = true;
            }
        }
        if let Some(worker_eta) = status
            .get("panel")
            .and_then(|p| p.get("eta_secs"))
            .and_then(Json::as_f64)
        {
            eta = Some(eta.map_or(worker_eta, |e: f64| e.max(worker_eta)));
        }
    }
    let stale: Vec<Json> = observed
        .iter()
        .filter(|o| o.is_stale())
        .map(|o| Json::U64(o.worker as u64))
        .collect();
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(PROGRESS_SCHEMA.into())),
        ("id".to_string(), Json::Str(entry.id.clone())),
        (
            "state".to_string(),
            Json::Str(entry.state.as_str().to_string()),
        ),
        ("cells_total".to_string(), Json::U64(entry.cells_total)),
        ("cells_done".to_string(), Json::U64(cells_done)),
        (
            "panel".to_string(),
            Json::Obj(vec![
                (
                    "instances".to_string(),
                    Json::Obj(vec![
                        ("done".to_string(), Json::U64(instances_done)),
                        ("total".to_string(), Json::U64(instances_total)),
                    ]),
                ),
                (
                    "cells".to_string(),
                    Json::Obj(vec![
                        ("done".to_string(), Json::U64(panel_cells_done)),
                        ("total".to_string(), Json::U64(panel_cells_total)),
                    ]),
                ),
                (
                    "cache".to_string(),
                    if have_cache {
                        Json::Obj(vec![
                            ("hits".to_string(), Json::U64(cache[0])),
                            ("misses".to_string(), Json::U64(cache[1])),
                            ("rejected".to_string(), Json::U64(cache[2])),
                            ("append_failed".to_string(), Json::U64(cache[3])),
                        ])
                    } else {
                        Json::Null
                    },
                ),
            ]),
        ),
        (
            "eta_secs".to_string(),
            match eta {
                Some(e) => Json::F64(e),
                None => Json::Null,
            },
        ),
        ("stale_workers".to_string(), Json::Arr(stale)),
        (
            "workers".to_string(),
            Json::Arr(observed.iter().map(worker_json).collect()),
        ),
    ])
}

fn timeline_samples(timeline: &Json) -> &[Json] {
    match timeline.get("samples") {
        Some(Json::Arr(samples)) => samples,
        _ => &[],
    }
}

/// The current event cursor of a job: one monotonic per-worker count
/// of timeline samples ever taken (`dropped + len(samples)`), joined
/// with `-`. Clients treat it as opaque and echo it back as `since`.
pub fn events_cursor(store_dir: &Path, id: &str, workers: usize) -> String {
    observe_job(store_dir, id, workers)
        .iter()
        .map(|obs| {
            let seen = obs
                .timeline
                .as_ref()
                .map(|t| {
                    let dropped = t.get("dropped").and_then(Json::as_u64).unwrap_or(0);
                    dropped + timeline_samples(t).len() as u64
                })
                .unwrap_or(0);
            seen.to_string()
        })
        .collect::<Vec<_>>()
        .join("-")
}

fn parse_cursor(cursor: &str, workers: usize) -> Vec<u64> {
    let mut counts: Vec<u64> = cursor
        .split('-')
        .map(|part| part.parse().unwrap_or(0))
        .collect();
    counts.resize(workers, 0);
    counts
}

/// Builds the `GET /jobs/{id}/events` payload: for each worker, the
/// timeline samples taken since the `since` cursor (samples that
/// rotated out of the bounded ring in the meantime are skipped and the
/// cursor advances past them), plus the merged progress document so a
/// long-polling dashboard renders from one response.
pub fn events_json(entry: &JobEntry, store_dir: &Path, workers: usize, since: &str) -> Json {
    let observed = observe_job(store_dir, &entry.id, workers);
    let since = parse_cursor(since, workers);
    let mut worker_events = Vec::with_capacity(observed.len());
    for obs in &observed {
        let (new_samples, seen) = match &obs.timeline {
            None => (Vec::new(), 0),
            Some(t) => {
                let dropped = t.get("dropped").and_then(Json::as_u64).unwrap_or(0);
                let samples = timeline_samples(t);
                let seen = dropped + samples.len() as u64;
                let already = since.get(obs.worker).copied().unwrap_or(0);
                // Skip what the client has; anything older than the
                // ring's tail is gone and silently skipped.
                let skip = already.saturating_sub(dropped).min(samples.len() as u64);
                (samples[skip as usize..].to_vec(), seen)
            }
        };
        worker_events.push(Json::Obj(vec![
            ("worker".to_string(), Json::U64(obs.worker as u64)),
            ("seen".to_string(), Json::U64(seen)),
            ("interval_ms".to_string(), Json::U64(obs.interval_ms)),
            ("samples".to_string(), Json::Arr(new_samples)),
        ]));
    }
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(EVENTS_SCHEMA.into())),
        ("id".to_string(), Json::Str(entry.id.clone())),
        (
            "cursor".to_string(),
            Json::Str(events_cursor(store_dir, &entry.id, workers)),
        ),
        ("events".to_string(), Json::Arr(worker_events)),
        (
            "progress".to_string(),
            job_progress_json(entry, store_dir, workers),
        ),
    ])
}

/// Appends the `job`/`worker`-labelled aggregate series to a
/// Prometheus exposition document (all gauges — they are point-in-time
/// reads of other processes' files). Worker-level series cover
/// non-terminal jobs (terminal jobs have no shard dirs left);
/// job-level cell totals cover every job.
pub fn append_prometheus(out: &mut String, jobs: &[JobEntry], store_dir: &Path, workers: usize) {
    // Gather first so each metric's TYPE header is emitted exactly
    // once, before all its samples, as the exposition format requires.
    let mut job_series: Vec<(&'static str, String, u64)> = Vec::new();
    let mut worker_series: Vec<(&'static str, String, String, u64)> = Vec::new();
    for entry in jobs {
        let cells_done = match entry.state {
            JobState::Done => entry.cells_total,
            JobState::Queued => 0,
            _ => observe_job(store_dir, &entry.id, workers)
                .iter()
                .map(|o| o.cells_live)
                .sum(),
        };
        job_series.push(("qfab_job_cells_total", entry.id.clone(), entry.cells_total));
        job_series.push(("qfab_job_cells_done", entry.id.clone(), cells_done));
        if entry.state.is_terminal() || entry.state == JobState::Queued {
            continue;
        }
        for obs in observe_job(store_dir, &entry.id, workers) {
            let worker = obs.worker.to_string();
            let mut push = |name: &'static str, value: u64| {
                worker_series.push((name, entry.id.clone(), worker.clone(), value));
            };
            push("qfab_worker_cells_live", obs.cells_live);
            push("qfab_worker_stale", u64::from(obs.is_stale()));
            if let Some(age) = obs.heartbeat_age_ms {
                push("qfab_worker_heartbeat_age_ms", age);
            }
            if let Some(status) = &obs.status {
                for (name, path) in [
                    (
                        "qfab_worker_panel_instances_done",
                        &["panel", "instances", "done"][..],
                    ),
                    (
                        "qfab_worker_panel_instances_total",
                        &["panel", "instances", "total"],
                    ),
                    ("qfab_worker_panel_cells_done", &["panel", "cells", "done"]),
                    (
                        "qfab_worker_panel_cells_total",
                        &["panel", "cells", "total"],
                    ),
                    ("qfab_worker_cache_hits", &["panel", "cache", "hits"]),
                    ("qfab_worker_cache_misses", &["panel", "cache", "misses"]),
                    (
                        "qfab_worker_cache_rejected",
                        &["panel", "cache", "rejected"],
                    ),
                    (
                        "qfab_worker_cache_append_failed",
                        &["panel", "cache", "append_failed"],
                    ),
                ] {
                    if let Some(v) = status_u64(status, path) {
                        push(name, v);
                    }
                }
            }
        }
    }
    let mut emitted: Vec<&'static str> = Vec::new();
    for (name, job, value) in &job_series {
        if !emitted.contains(name) {
            emitted.push(name);
            promtext::push_type(out, name, "gauge");
            for (n, j, v) in &job_series {
                if n == name {
                    promtext::push_sample(out, n, &[("job", j.as_str())], *v);
                }
            }
        }
        let _ = (job, value);
    }
    let mut emitted: Vec<&'static str> = Vec::new();
    for (name, _, _, _) in &worker_series {
        if emitted.contains(name) {
            continue;
        }
        emitted.push(name);
        promtext::push_type(out, name, "gauge");
        for (n, job, worker, value) in &worker_series {
            if n == name {
                promtext::push_sample(
                    out,
                    n,
                    &[("job", job.as_str()), ("worker", worker.as_str())],
                    *value,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qfab_progress_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(id: &str, state: JobState, cells_total: u64) -> JobEntry {
        JobEntry {
            id: id.to_string(),
            spec: JobSpec {
                grid: vec!["fig1a".into()],
                scale: "quick".into(),
                instances: None,
                shots: None,
                seed: 7,
                shots_ledger: false,
            },
            state,
            cells_total,
            note: String::new(),
            error: String::new(),
        }
    }

    fn write_worker_status(dir: &Path, done: u64, total: u64, eta: f64) {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(
            dir.join("status.json"),
            format!(
                r#"{{"schema": "qfab.status.v1", "state": "running",
                     "elapsed_secs": 1.0,
                     "panel": {{"id": "fig1a",
                       "instances": {{"done": {done}, "total": {total}}},
                       "cells": {{"done": {c_done}, "total": {c_total}}},
                       "last_instance": null, "eta_secs": {eta},
                       "cache": {{"hits": {done}, "misses": 1,
                                  "rejected": 0, "append_failed": 0}}}},
                     "panels_completed": []}}"#,
                c_done = done * 4,
                c_total = total * 4,
            ),
        )
        .unwrap();
    }

    fn write_worker_timeline(dir: &Path, dropped: u64, sample_ts: &[u64]) {
        let samples: Vec<String> = sample_ts
            .iter()
            .map(|t| {
                format!(r#"{{"t_ms": {t}, "counters": {{}}, "gauges": {{}}, "histograms": {{}}}}"#)
            })
            .collect();
        std::fs::write(
            dir.join("timeline.json"),
            format!(
                r#"{{"schema": "qfab.timeline.v1", "interval_ms": 50,
                     "capacity": 8, "dropped": {dropped},
                     "samples": [{}]}}"#,
                samples.join(", ")
            ),
        )
        .unwrap();
    }

    #[test]
    fn progress_merges_workers_and_sums_to_job_totals() {
        let store = tmp("merge");
        let e = entry("j0001-aaaaaaaa", JobState::Running, 32);
        let w0 = store.join("shards").join(&e.id).join("w0");
        let w1 = store.join("shards").join(&e.id).join("w1");
        write_worker_status(&w0, 2, 4, 3.5);
        write_worker_status(&w1, 1, 4, 9.0);
        let doc = job_progress_json(&e, &store, 2);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(PROGRESS_SCHEMA)
        );
        let panel = doc.get("panel").unwrap();
        assert_eq!(
            panel
                .get("instances")
                .and_then(|i| i.get("done"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            panel
                .get("instances")
                .and_then(|i| i.get("total"))
                .and_then(Json::as_u64),
            Some(8)
        );
        assert_eq!(
            panel
                .get("cells")
                .and_then(|c| c.get("done"))
                .and_then(Json::as_u64),
            Some(12)
        );
        assert_eq!(
            panel
                .get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            panel
                .get("cache")
                .and_then(|c| c.get("misses"))
                .and_then(Json::as_u64),
            Some(2)
        );
        // The job-level ETA is the slowest worker's.
        assert_eq!(doc.get("eta_secs").and_then(Json::as_f64), Some(9.0));
        // Fresh heartbeats: nobody is stale.
        assert_eq!(doc.get("stale_workers"), Some(&Json::Arr(vec![])));
        let Some(Json::Arr(ws)) = doc.get("workers") else {
            panic!("workers missing")
        };
        assert_eq!(ws.len(), 2);
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn a_silent_heartbeat_goes_stale_but_a_missing_one_does_not() {
        let obs = WorkerObs {
            worker: 0,
            status: None,
            heartbeat_age_ms: Some(10_000),
            interval_ms: 250,
            timeline: None,
            cells_live: 0,
        };
        assert!(obs.is_stale(), "3 intervals = 750ms; 10s is long dead");
        let fresh = WorkerObs {
            heartbeat_age_ms: Some(700),
            ..obs
        };
        assert!(!fresh.is_stale(), "under 3 intervals is just jitter");
        let missing = WorkerObs {
            heartbeat_age_ms: None,
            ..fresh
        };
        assert!(
            !missing.is_stale(),
            "no heartbeat yet is unobserved, not stale"
        );
    }

    #[test]
    fn stale_workers_are_reported_from_old_heartbeat_files() {
        let store = tmp("stale");
        let e = entry("j0002-bbbbbbbb", JobState::Running, 8);
        let w0 = store.join("shards").join(&e.id).join("w0");
        write_worker_status(&w0, 1, 2, 1.0);
        // Backdate the heartbeat far past 3 intervals. filetime isn't
        // available (zero-dep), so wait out 3 × 50ms instead — the
        // written timeline pins interval_ms to 50.
        write_worker_timeline(&w0, 0, &[0]);
        std::thread::sleep(std::time::Duration::from_millis(400));
        assert_eq!(stale_workers(&store, &e.id, 2), vec![0]);
        let doc = job_progress_json(&e, &store, 2);
        assert_eq!(
            doc.get("stale_workers"),
            Some(&Json::Arr(vec![Json::U64(0)]))
        );
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn events_return_only_samples_past_the_cursor() {
        let store = tmp("events");
        let e = entry("j0003-cccccccc", JobState::Running, 8);
        let w0 = store.join("shards").join(&e.id).join("w0");
        std::fs::create_dir_all(&w0).unwrap();
        write_worker_timeline(&w0, 0, &[0, 50, 100]);
        let cursor = events_cursor(&store, &e.id, 1);
        assert_eq!(cursor, "3");
        // From scratch: everything is new.
        let doc = events_json(&e, &store, 1, "");
        let Some(Json::Arr(events)) = doc.get("events") else {
            panic!("events missing")
        };
        let Some(Json::Arr(samples)) = events[0].get("samples") else {
            panic!("samples missing")
        };
        assert_eq!(samples.len(), 3);
        // From the current cursor: nothing new.
        let doc = events_json(&e, &store, 1, &cursor);
        let Some(Json::Arr(events)) = doc.get("events") else {
            panic!("events missing")
        };
        let Some(Json::Arr(samples)) = events[0].get("samples") else {
            panic!("samples missing")
        };
        assert!(samples.is_empty());
        // The ring rotated: two samples aged out, one taken since.
        write_worker_timeline(&w0, 2, &[100, 150]);
        let doc = events_json(&e, &store, 1, &cursor);
        assert_eq!(
            doc.get("cursor").and_then(Json::as_str),
            Some("4"),
            "dropped + kept"
        );
        let Some(Json::Arr(events)) = doc.get("events") else {
            panic!("events missing")
        };
        let Some(Json::Arr(samples)) = events[0].get("samples") else {
            panic!("samples missing")
        };
        assert_eq!(samples.len(), 1);
        assert_eq!(
            samples[0].get("t_ms").and_then(Json::as_u64),
            Some(150),
            "only the sample past the cursor"
        );
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn prometheus_series_are_labelled_and_validate() {
        let store = tmp("prom");
        let e = entry("j0004-dddddddd", JobState::Running, 32);
        let w0 = store.join("shards").join(&e.id).join("w0");
        write_worker_status(&w0, 2, 4, 3.5);
        let mut out = String::new();
        append_prometheus(&mut out, &[e], &store, 2);
        promtext::validate(&out).unwrap_or_else(|err| panic!("invalid exposition:\n{out}\n{err}"));
        assert!(out.contains("qfab_job_cells_total{job=\"j0004-dddddddd\"} 32\n"));
        assert!(out
            .contains("qfab_worker_panel_instances_done{job=\"j0004-dddddddd\",worker=\"0\"} 2\n"));
        assert!(out.contains("qfab_worker_stale{job=\"j0004-dddddddd\",worker=\"0\"} 0\n"));
        // Worker 1 never wrote a heartbeat: cell/stale series only.
        assert!(out.contains("qfab_worker_cells_live{job=\"j0004-dddddddd\",worker=\"1\"} 0\n"));
        assert!(!out.contains("worker=\"1\"} 2"));
        let _ = std::fs::remove_dir_all(&store);
    }
}
