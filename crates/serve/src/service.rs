//! The `repro serve` engine: HTTP front end plus the dispatcher that
//! shards jobs across worker subprocesses.
//!
//! The service owns one store directory. Each accepted job is durably
//! queued ([`crate::queue`]), then dispatched: N worker subprocesses
//! each compute a disjoint instance shard into an isolated shard store
//! under `store/shards/<job>/w<k>`, and on success the shards are
//! merged into the service store ([`crate::merge`]) and the job
//! finalized (panel outputs rendered from the now-fully-cached store —
//! which is what makes service results byte-identical to a
//! single-process run). Shard stores are caches: they are deleted after
//! a successful merge and kept on failure, so a retry resumes from
//! whatever already hit the disk.
//!
//! Everything experiment-specific enters through [`Hooks`]; this module
//! only sequences processes, files, and HTTP.

use crate::job::JobSpec;
use crate::merge::{count_live, merge_stores, salts_validator};
use crate::progress;
use crate::queue::{JobEntry, JobQueue, JobState};
use qfab_telemetry::httpd::{self, Method, Request, Response};
use qfab_telemetry::{promtext, Json};
use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::Stdio;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Discovery file written next to the store once the listener is bound
/// (the service binds port 0 in CI; clients read the real address from
/// here).
pub const SERVICE_FILE: &str = "service.json";

/// Schema tag of [`SERVICE_FILE`].
pub const SERVICE_SCHEMA: &str = "qfab.service.v1";

/// Schema tag of `GET /jobs/{id}` documents.
pub const JOB_STATUS_SCHEMA: &str = "qfab.jobstatus.v1";

/// Static configuration for one service instance.
pub struct ServiceConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// The service store directory (results, queue, discovery file).
    pub store_dir: PathBuf,
    /// Worker subprocesses per job.
    pub workers: usize,
    /// Code-version salts records may carry to merge into the store —
    /// one per record family (result cells, shot provenance, ...), all
    /// written under the same simulation semantics.
    pub salts: Vec<String>,
    /// Seed applied to jobs that do not name one.
    pub default_seed: u64,
    /// Dispatcher poll interval between queue checks.
    pub poll: Duration,
}

/// Hook: validates a spec and returns the total cell count it covers.
pub type ValidateFn = dyn Fn(&JobSpec) -> Result<u64, String> + Send + Sync;
/// Hook: builds the subprocess command for one worker shard.
pub type WorkerCommandFn =
    dyn Fn(&JobSpec, usize, usize, &Path) -> std::process::Command + Send + Sync;
/// Hook: renders a completed job from the merged store; returns a note.
pub type FinalizeFn = dyn Fn(&str, &JobSpec, &Path) -> Result<String, String> + Send + Sync;
/// Hook: renders a document (dashboard, drift report) from the store.
pub type RenderFn = dyn Fn(&Path) -> Result<String, String> + Send + Sync;

/// Experiment-specific behaviour, injected by the binary so the
/// dependency arrow stays `qfab-experiments → qfab-serve`.
pub struct Hooks {
    /// Validates a spec (does the grid resolve? is the scale known?)
    /// and returns the total cell count the job covers.
    pub validate: Box<ValidateFn>,
    /// Builds the command for worker `shard` of `shards`, writing into
    /// the given shard store directory.
    pub worker_command: Box<WorkerCommandFn>,
    /// Renders a completed job's outputs from the merged store; returns
    /// a completion note (e.g. the output directory).
    pub finalize: Box<FinalizeFn>,
    /// Renders the store's result dashboard (`GET /dash`).
    pub render_dash: Box<RenderFn>,
    /// Renders the store's drift report (`GET /diff`).
    pub render_diff: Box<RenderFn>,
}

/// A running service; stop it with [`ServiceHandle::shutdown`].
pub struct ServiceHandle {
    addr: SocketAddr,
    http: httpd::HttpServer,
    stop: Arc<AtomicBool>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound listen address (real port even when configured as 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the HTTP listener and the dispatcher. A job mid-flight
    /// finishes its current step; anything queued stays durably queued
    /// for the next start.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.http.shutdown();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }

    /// Blocks until the service is shut down (the foreground mode of
    /// `repro serve`, which runs until killed).
    pub fn wait(mut self) {
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        self.http.shutdown();
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Shard-store directory for worker `shard` of job `id`.
fn shard_dir(store_dir: &Path, id: &str, shard: usize) -> PathBuf {
    store_dir.join("shards").join(id).join(format!("w{shard}"))
}

fn shard_dirs(store_dir: &Path, id: &str, shards: usize) -> Vec<PathBuf> {
    (0..shards).map(|w| shard_dir(store_dir, id, w)).collect()
}

/// Job ids appear in URL paths and under `shards/`; only our own
/// alphabet is allowed through, so a crafted path can never escape the
/// store directory.
fn valid_id(id: &str) -> bool {
    !id.is_empty() && id.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')
}

fn job_status_json(entry: &JobEntry, store_dir: &Path, workers: usize) -> Json {
    let cells_done = match entry.state {
        JobState::Done => entry.cells_total,
        JobState::Queued => 0,
        _ => shard_dirs(store_dir, &entry.id, workers)
            .iter()
            .map(|d| count_live(d).unwrap_or(0))
            .sum(),
    };
    let mut fields = vec![
        ("schema".to_string(), Json::Str(JOB_STATUS_SCHEMA.into())),
        ("id".to_string(), Json::Str(entry.id.clone())),
        (
            "state".to_string(),
            Json::Str(entry.state.as_str().to_string()),
        ),
        ("cells_total".to_string(), Json::U64(entry.cells_total)),
        ("cells_done".to_string(), Json::U64(cells_done)),
        ("job".to_string(), entry.spec.to_json()),
    ];
    if !entry.note.is_empty() {
        fields.push(("note".to_string(), Json::Str(entry.note.clone())));
    }
    if !entry.error.is_empty() {
        fields.push(("error".to_string(), Json::Str(entry.error.clone())));
    }
    if entry.state == JobState::Running {
        // A worker whose heartbeat went silent was probably SIGKILLed
        // or wedged; surface that instead of letting its last heartbeat
        // claim `running` forever.
        fields.push((
            "stale_workers".to_string(),
            Json::Arr(
                progress::stale_workers(store_dir, &entry.id, workers)
                    .into_iter()
                    .map(|w| Json::U64(w as u64))
                    .collect(),
            ),
        ));
    }
    Json::Obj(fields)
}

/// Writes the discovery file atomically (write-then-rename, like every
/// other snapshot file in the stack) so readers never see a torn
/// document.
fn write_service_file(store_dir: &Path, addr: SocketAddr, workers: usize) -> io::Result<()> {
    let doc = Json::Obj(vec![
        ("schema".to_string(), Json::Str(SERVICE_SCHEMA.into())),
        ("addr".to_string(), Json::Str(addr.to_string())),
        ("workers".to_string(), Json::U64(workers as u64)),
        ("pid".to_string(), Json::U64(std::process::id() as u64)),
    ]);
    let path = store_dir.join(SERVICE_FILE);
    let tmp = store_dir.join(format!("{SERVICE_FILE}.tmp"));
    std::fs::write(&tmp, doc.encode_pretty())?;
    std::fs::rename(&tmp, &path)
}

/// Last few meaningful stderr lines of a worker, for failure reports.
/// Progress updates are carriage-return-rewritten, so split on both
/// `\n` and `\r` before taking the tail.
fn stderr_tail(shard_dir: &Path) -> Option<String> {
    let text = std::fs::read_to_string(shard_dir.join("worker.log")).ok()?;
    let lines: Vec<&str> = text
        .split(['\n', '\r'])
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    if lines.is_empty() {
        return None;
    }
    let tail = &lines[lines.len().saturating_sub(5)..];
    Some(tail.join(" | "))
}

/// Runs one job to a terminal state: spawn the workers, wait, merge,
/// finalize. Every failure path returns a reason for `mark_failed`.
fn process_job(entry: &JobEntry, config: &ServiceConfig, hooks: &Hooks) -> Result<String, String> {
    let shards = shard_dirs(&config.store_dir, &entry.id, config.workers);
    let mut children = Vec::with_capacity(shards.len());
    for (w, dir) in shards.iter().enumerate() {
        std::fs::create_dir_all(dir).map_err(|e| format!("shard dir {}: {e}", dir.display()))?;
        let log = std::fs::File::create(dir.join("worker.log"))
            .map_err(|e| format!("worker {w} log: {e}"))?;
        let mut cmd = (hooks.worker_command)(&entry.spec, w, config.workers, dir);
        cmd.stdin(Stdio::null()).stdout(Stdio::null()).stderr(log);
        let child = cmd.spawn().map_err(|e| format!("spawn worker {w}: {e}"))?;
        children.push((w, child));
    }
    let mut failures = Vec::new();
    for (w, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                let mut reason = format!("worker {w} exited with {status}");
                if let Some(tail) = stderr_tail(&shards[w]) {
                    reason.push_str(&format!("; stderr: {tail}"));
                }
                failures.push(reason);
            }
            Err(e) => failures.push(format!("worker {w} wait: {e}")),
        }
    }
    if !failures.is_empty() {
        // Shard stores stay on disk: a resubmitted job resumes from
        // their cached cells instead of recomputing.
        return Err(failures.join("; "));
    }
    let report = merge_stores(&shards, &config.store_dir, salts_validator(&config.salts))
        .map_err(|e| format!("merge: {e}"))?;
    if report.conflicts > 0 {
        return Err(format!(
            "merge found {} conflicting record(s): shard stores disagree with the service store",
            report.conflicts
        ));
    }
    let note = (hooks.finalize)(&entry.id, &entry.spec, &config.store_dir)?;
    let _ = std::fs::remove_dir_all(config.store_dir.join("shards").join(&entry.id));
    Ok(format!(
        "{note} ({} cells merged, {} already cached, {} rejected)",
        report.added, report.duplicates, report.rejected
    ))
}

fn dispatcher_loop(
    queue: Arc<Mutex<JobQueue>>,
    config: Arc<ServiceConfig>,
    hooks: Arc<Hooks>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        let next = {
            let mut q = queue.lock().unwrap();
            match q.next_queued().cloned() {
                Some(entry) => {
                    if q.mark_running(&entry.id).is_err() {
                        None
                    } else {
                        Some(entry)
                    }
                }
                None => None,
            }
        };
        let Some(entry) = next else {
            std::thread::sleep(config.poll);
            continue;
        };
        let outcome = process_job(&entry, &config, &hooks);
        let mut q = queue.lock().unwrap();
        let _ = match outcome {
            Ok(note) => q.mark_done(&entry.id, &note),
            Err(reason) => q.mark_failed(&entry.id, &reason),
        };
    }
}

fn handle(
    req: &Request,
    queue: &Mutex<JobQueue>,
    config: &ServiceConfig,
    hooks: &Hooks,
) -> Response {
    match (req.method, req.path.as_str()) {
        (Method::Post, "/jobs") => {
            let spec = match JobSpec::parse(&req.body, config.default_seed) {
                Ok(spec) => spec,
                Err(e) => return Response::bad_request(format!("bad job: {e}\n")),
            };
            let cells = match (hooks.validate)(&spec) {
                Ok(cells) => cells,
                Err(e) => return Response::bad_request(format!("bad job: {e}\n")),
            };
            let mut q = queue.lock().unwrap();
            match q.submit(spec, cells) {
                Ok(id) => Response::json(
                    Json::Obj(vec![
                        ("id".to_string(), Json::Str(id)),
                        ("state".to_string(), Json::Str("queued".into())),
                        ("cells_total".to_string(), Json::U64(cells)),
                    ])
                    .encode(),
                ),
                Err(e) => Response {
                    status: 503,
                    ..Response::text(format!("queue append failed: {e}\n"))
                },
            }
        }
        (Method::Post, _) => Response::not_found(),
        (Method::Get, "/") => {
            let q = queue.lock().unwrap();
            let mut body = format!(
                "qfab sweep service: {} workers, {} job(s)\n",
                config.workers,
                q.jobs().len()
            );
            for job in q.jobs() {
                body.push_str(&format!("  {}  {}\n", job.id, job.state.as_str()));
            }
            body.push_str(
                "\nPOST /jobs  GET /jobs  GET /jobs/{id}  GET /jobs/{id}/progress  \
                 GET /jobs/{id}/events  GET /metrics  GET /dash  GET /diff\n",
            );
            Response::text(body)
        }
        (Method::Get, "/metrics") => {
            // The registry covers this process; the appended series
            // federate what the worker subprocesses left in their shard
            // stores, labelled by job and worker.
            let jobs: Vec<JobEntry> = queue.lock().unwrap().jobs().to_vec();
            let mut body = promtext::render_registry();
            progress::append_prometheus(&mut body, &jobs, &config.store_dir, config.workers);
            Response {
                content_type: promtext::CONTENT_TYPE,
                cache_control: Some("no-store"),
                ..Response::text(body)
            }
        }
        (Method::Get, "/status.json") => {
            let q = queue.lock().unwrap();
            let count = |s: JobState| q.jobs().iter().filter(|j| j.state == s).count() as u64;
            Response::json(
                Json::Obj(vec![
                    ("schema".to_string(), Json::Str(SERVICE_SCHEMA.into())),
                    ("workers".to_string(), Json::U64(config.workers as u64)),
                    ("jobs".to_string(), Json::U64(q.jobs().len() as u64)),
                    ("queued".to_string(), Json::U64(count(JobState::Queued))),
                    ("running".to_string(), Json::U64(count(JobState::Running))),
                    ("done".to_string(), Json::U64(count(JobState::Done))),
                    ("failed".to_string(), Json::U64(count(JobState::Failed))),
                ])
                .encode(),
            )
        }
        (Method::Get, "/jobs") => {
            let q = queue.lock().unwrap();
            let items = q
                .jobs()
                .iter()
                .map(|j| job_status_json(j, &config.store_dir, config.workers))
                .collect();
            Response::json(Json::Arr(items).encode())
        }
        (Method::Get, path) if path.starts_with("/jobs/") => {
            let rest = &path["/jobs/".len()..];
            let (rest, query) = rest.split_once('?').unwrap_or((rest, ""));
            let (id, sub) = match rest.split_once('/') {
                Some((id, sub)) => (id, Some(sub)),
                None => (rest, None),
            };
            if !valid_id(id) {
                return Response::bad_request("bad job id\n");
            }
            match sub {
                None => {
                    let q = queue.lock().unwrap();
                    match q.get(id) {
                        Some(entry) => Response::json(
                            job_status_json(entry, &config.store_dir, config.workers).encode(),
                        ),
                        None => Response::not_found(),
                    }
                }
                Some("progress") => {
                    let entry = queue.lock().unwrap().get(id).cloned();
                    match entry {
                        Some(entry) => Response::json(
                            progress::job_progress_json(&entry, &config.store_dir, config.workers)
                                .encode(),
                        ),
                        None => Response::not_found(),
                    }
                }
                Some("events") => {
                    let since = query
                        .split('&')
                        .find_map(|kv| kv.strip_prefix("since="))
                        .unwrap_or("");
                    // Long-poll: wait (briefly — connection slots are a
                    // shared, capped resource) for the cursor to move
                    // past `since`, answering immediately for a fresh
                    // cursor or a terminal job. The queue lock is never
                    // held across a sleep.
                    let deadline = std::time::Instant::now() + Duration::from_secs(2);
                    loop {
                        let entry = queue.lock().unwrap().get(id).cloned();
                        let Some(entry) = entry else {
                            return Response::not_found();
                        };
                        let cursor = progress::events_cursor(&config.store_dir, id, config.workers);
                        if since.is_empty()
                            || cursor != since
                            || entry.state.is_terminal()
                            || std::time::Instant::now() >= deadline
                        {
                            return Response::json(
                                progress::events_json(
                                    &entry,
                                    &config.store_dir,
                                    config.workers,
                                    since,
                                )
                                .encode(),
                            );
                        }
                        std::thread::sleep(Duration::from_millis(100));
                    }
                }
                Some(_) => Response::not_found(),
            }
        }
        (Method::Get, "/dash") => match (hooks.render_dash)(&config.store_dir) {
            Ok(text) => Response::text(text),
            Err(e) => Response {
                status: 404,
                ..Response::text(format!("dashboard unavailable: {e}\n"))
            },
        },
        (Method::Get, "/diff") => match (hooks.render_diff)(&config.store_dir) {
            Ok(text) => Response::text(text),
            Err(e) => Response {
                status: 404,
                ..Response::text(format!("drift report unavailable: {e}\n"))
            },
        },
        (Method::Get, _) => Response::not_found(),
    }
}

/// Starts the service: opens (and replays) the durable queue, binds the
/// listener, writes the discovery file, and launches the dispatcher.
pub fn start(config: ServiceConfig, hooks: Hooks) -> io::Result<ServiceHandle> {
    std::fs::create_dir_all(&config.store_dir)?;
    let queue = Arc::new(Mutex::new(JobQueue::open(&config.store_dir)?));
    let config = Arc::new(config);
    let hooks = Arc::new(hooks);
    let stop = Arc::new(AtomicBool::new(false));

    let handler_queue = Arc::clone(&queue);
    let handler_config = Arc::clone(&config);
    let handler_hooks = Arc::clone(&hooks);
    let handler: httpd::Handler =
        Arc::new(move |req| handle(req, &handler_queue, &handler_config, &handler_hooks));
    let http = httpd::serve(config.addr.as_str(), handler)?;
    let addr = http.local_addr();
    write_service_file(&config.store_dir, addr, config.workers)?;

    let stop_flag = Arc::clone(&stop);
    let dispatcher = std::thread::Builder::new()
        .name("qfab-serve-dispatch".into())
        .spawn(move || dispatcher_loop(queue, config, hooks, stop_flag))?;

    Ok(ServiceHandle {
        addr,
        http,
        stop,
        dispatcher: Some(dispatcher),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qfab_service_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Hooks whose "workers" are `true`(1) and whose finalize just
    /// reports — enough to exercise the queue/dispatch/merge plumbing
    /// without simulating anything.
    fn stub_hooks(worker_bin: &'static str) -> Hooks {
        Hooks {
            validate: Box::new(|spec| {
                if spec.grid.iter().any(|g| g == "bogus") {
                    Err("unknown grid entry 'bogus'".to_string())
                } else {
                    Ok(8)
                }
            }),
            worker_command: Box::new(move |_spec, _shard, _shards, _dir| {
                std::process::Command::new(worker_bin)
            }),
            finalize: Box::new(|id, _spec, _store| Ok(format!("finalized {id}"))),
            render_dash: Box::new(|_| Ok("dash\n".to_string())),
            render_diff: Box::new(|_| Err("no runs yet".to_string())),
        }
    }

    fn config(store: &Path) -> ServiceConfig {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir: store.to_path_buf(),
            workers: 2,
            salts: vec!["v2".to_string()],
            default_seed: 7,
            poll: Duration::from_millis(20),
        }
    }

    fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let status = text
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
        (status, body.to_string())
    }

    fn post_job(addr: SocketAddr, body: &str) -> (u16, String) {
        request(
            addr,
            &format!(
                "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        request(addr, &format!("GET {path} HTTP/1.1\r\n\r\n"))
    }

    fn poll_terminal(addr: SocketAddr, id: &str) -> Json {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let (status, body) = get(addr, &format!("/jobs/{id}"));
            assert_eq!(status, 200, "{body}");
            let doc = Json::parse(&body).unwrap();
            let state = doc.get("state").and_then(Json::as_str).unwrap().to_string();
            if state == "done" || state == "failed" {
                return doc;
            }
            assert!(std::time::Instant::now() < deadline, "job stuck: {body}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn submitted_jobs_run_to_done_and_report_progress() {
        let store = tmp("done");
        let mut handle = start(config(&store), stub_hooks("true")).unwrap();
        let addr = handle.local_addr();

        // The discovery file carries the real bound address.
        let disc = std::fs::read_to_string(store.join(SERVICE_FILE)).unwrap();
        let disc = Json::parse(&disc).unwrap();
        assert_eq!(
            disc.get("schema").and_then(Json::as_str),
            Some(SERVICE_SCHEMA)
        );
        assert_eq!(
            disc.get("addr").and_then(Json::as_str),
            Some(addr.to_string().as_str())
        );

        let (status, body) = post_job(addr, r#"{"grid":["fig1"],"scale":"quick"}"#);
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        let id = doc.get("id").and_then(Json::as_str).unwrap().to_string();
        assert_eq!(doc.get("cells_total").and_then(Json::as_u64), Some(8));

        let done = poll_terminal(addr, &id);
        assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
        assert!(done
            .get("note")
            .and_then(Json::as_str)
            .unwrap()
            .contains(&format!("finalized {id}")));
        // Shard stores are cleaned up after a successful merge.
        assert!(!store.join("shards").join(&id).exists());

        // The index and status endpoints know the job.
        let (_, listing) = get(addr, "/jobs");
        assert!(listing.contains(&id));
        let (_, status_doc) = get(addr, "/status.json");
        let status_doc = Json::parse(&status_doc).unwrap();
        assert_eq!(status_doc.get("done").and_then(Json::as_u64), Some(1));
        // Hook-backed panels.
        assert_eq!(get(addr, "/dash"), (200, "dash\n".into()));
        assert_eq!(get(addr, "/diff").0, 404);
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn failing_workers_mark_the_job_failed_and_keep_shards() {
        let store = tmp("failed");
        let mut handle = start(config(&store), stub_hooks("false")).unwrap();
        let addr = handle.local_addr();
        let (status, body) = post_job(addr, r#"{"grid":["fig1"]}"#);
        assert_eq!(status, 200, "{body}");
        let id = Json::parse(&body)
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let done = poll_terminal(addr, &id);
        assert_eq!(done.get("state").and_then(Json::as_str), Some("failed"));
        assert!(done
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("worker"));
        // Shards stay for resume.
        assert!(store.join("shards").join(&id).exists());
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn failed_jobs_surface_worker_stderr() {
        let store = tmp("stderrtail");
        let mut hooks = stub_hooks("false");
        hooks.worker_command = Box::new(|_spec, shard, _shards, _dir| {
            let mut cmd = std::process::Command::new("sh");
            cmd.arg("-c").arg(format!(
                "echo 'worker {shard}: cache open failed' >&2; exit 3"
            ));
            cmd
        });
        let mut handle = start(config(&store), hooks).unwrap();
        let addr = handle.local_addr();
        let (status, body) = post_job(addr, r#"{"grid":["fig1"]}"#);
        assert_eq!(status, 200, "{body}");
        let id = Json::parse(&body)
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let done = poll_terminal(addr, &id);
        assert_eq!(done.get("state").and_then(Json::as_str), Some("failed"));
        let err = done.get("error").and_then(Json::as_str).unwrap();
        assert!(err.contains("exit status: 3"), "{err}");
        assert!(err.contains("cache open failed"), "{err}");
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn progress_events_and_metrics_cover_the_job() {
        let store = tmp("progress");
        let mut handle = start(config(&store), stub_hooks("true")).unwrap();
        let addr = handle.local_addr();
        let (status, body) = post_job(addr, r#"{"grid":["fig1"],"scale":"quick"}"#);
        assert_eq!(status, 200, "{body}");
        let id = Json::parse(&body)
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        poll_terminal(addr, &id);

        // Merged progress document for a terminal job: totals resolved,
        // stub workers (which never wrote heartbeats) listed unobserved.
        let (status, body) = get(addr, &format!("/jobs/{id}/progress"));
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(progress::PROGRESS_SCHEMA)
        );
        assert_eq!(doc.get("cells_done").and_then(Json::as_u64), Some(8));
        assert_eq!(doc.get("cells_total").and_then(Json::as_u64), Some(8));
        let Some(Json::Arr(ws)) = doc.get("workers") else {
            panic!("workers missing: {body}")
        };
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].get("stale"), Some(&Json::Bool(false)));

        // Events answer immediately on a terminal job, with a cursor.
        let (status, body) = get(addr, &format!("/jobs/{id}/events?since=0-0"));
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(progress::EVENTS_SCHEMA)
        );
        assert!(doc.get("cursor").and_then(Json::as_str).is_some());
        assert!(doc.get("progress").is_some());

        // /metrics is parsing-clean exposition carrying the job series.
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200, "{body}");
        qfab_telemetry::promtext::validate(&body)
            .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{body}"));
        assert!(
            body.contains(&format!("qfab_job_cells_total{{job=\"{id}\"}} 8")),
            "{body}"
        );

        // Unknown sub-routes and bad ids under /jobs/ are rejected.
        assert_eq!(get(addr, &format!("/jobs/{id}/bogus")).0, 404);
        assert_eq!(get(addr, "/jobs/../escape/progress").0, 400);
        assert_eq!(get(addr, "/jobs/j9999-deadbeef/progress").0, 404);
        assert_eq!(get(addr, "/jobs/j9999-deadbeef/events").0, 404);
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn bad_submissions_get_400_with_reasons() {
        let store = tmp("bad");
        let mut handle = start(config(&store), stub_hooks("true")).unwrap();
        let addr = handle.local_addr();
        let (status, body) = post_job(addr, "not json");
        assert_eq!(status, 400);
        assert!(body.contains("not JSON"), "{body}");
        let (status, body) = post_job(addr, r#"{"grid":["bogus"]}"#);
        assert_eq!(status, 400);
        assert!(body.contains("bogus"), "{body}");
        // Nothing was queued.
        let (_, listing) = get(addr, "/jobs");
        assert_eq!(listing.trim(), "[]");
        // Unknown POST paths and malformed ids are rejected.
        assert_eq!(
            request(addr, "POST /nope HTTP/1.1\r\nContent-Length: 0\r\n\r\n").0,
            404
        );
        assert_eq!(get(addr, "/jobs/../escape").0, 400);
        assert_eq!(get(addr, "/jobs/j9999-deadbeef").0, 404);
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn queued_work_survives_a_restart() {
        let store = tmp("restart");
        // Seed the queue as a killed service would leave it: one job
        // acknowledged, another caught mid-run.
        {
            let mut q = JobQueue::open(&store).unwrap();
            let spec = JobSpec {
                grid: vec!["fig1".into()],
                scale: "quick".into(),
                instances: None,
                shots: None,
                seed: 7,
                shots_ledger: false,
            };
            q.submit(spec.clone(), 8).unwrap();
            let b = q.submit(spec, 8).unwrap();
            q.mark_running(&b).unwrap();
        }
        let mut handle = start(config(&store), stub_hooks("true")).unwrap();
        let addr = handle.local_addr();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let (_, body) = get(addr, "/status.json");
            let doc = Json::parse(&body).unwrap();
            if doc.get("done").and_then(Json::as_u64) == Some(2) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "jobs not replayed: {body}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&store);
    }
}
