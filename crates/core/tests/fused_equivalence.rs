//! Property-style equivalence checks: fused execution plans must agree
//! with per-gate application on the *real* circuits the pipeline runs —
//! random QFA/QFM instances lowered to the CX + 1q basis.
//!
//! Seeded loops rather than `proptest` so the checks run in every
//! environment (the offline proptest stub cannot generate values).

use qfab_circuit::gate::Gate;
use qfab_circuit::Circuit;
use qfab_core::{AddInstance, AqftDepth, MulInstance};
use qfab_math::rng::Xoshiro256StarStar;
use qfab_sim::{CheckpointTable, FusedPlan, Insertion, StateVector};
use qfab_transpile::{transpile, Basis};

const TOL: f64 = 1e-10;

fn assert_states_agree(fused: &StateVector, reference: &StateVector, label: &str) {
    let (f, r) = (fused.amplitudes(), reference.amplitudes());
    assert_eq!(f.len(), r.len(), "{label}: dimension mismatch");
    for (i, (a, b)) in f.iter().zip(r).enumerate() {
        let err = (*a - *b).norm();
        assert!(
            err <= TOL,
            "{label}: amplitude {i} differs by {err:.3e} (fused {a}, reference {b})"
        );
    }
}

fn check_plan_matches_circuit(circuit: &Circuit, initial: &StateVector, label: &str) {
    let plan = FusedPlan::compile(circuit);
    let mut fused = initial.clone();
    plan.apply(&mut fused);
    let mut reference = initial.clone();
    reference.apply_circuit(circuit);
    assert_states_agree(&fused, &reference, label);
}

#[test]
fn fused_matches_per_gate_on_random_transpiled_qfa() {
    let mut rng = Xoshiro256StarStar::new(0xA11CE);
    for seed in 0..6u64 {
        let inst = AddInstance::random(4, 4, 1 + (seed as usize % 2), 2, &mut rng);
        for depth in [
            AqftDepth::Full,
            AqftDepth::Limited(1),
            AqftDepth::Limited(3),
        ] {
            let lowered = transpile(&inst.circuit(depth), Basis::CxPlus1q);
            check_plan_matches_circuit(
                &lowered,
                &inst.initial_state(),
                &format!("qfa seed={seed} depth={depth:?}"),
            );
        }
    }
}

#[test]
fn fused_matches_per_gate_on_random_transpiled_qfm() {
    let mut rng = Xoshiro256StarStar::new(0xB0B);
    for seed in 0..4u64 {
        let inst = MulInstance::random(2, 2, 2, 1 + (seed as usize % 2), &mut rng);
        for depth in [AqftDepth::Full, AqftDepth::Limited(2)] {
            let lowered = transpile(&inst.circuit(depth), Basis::CxPlus1q);
            check_plan_matches_circuit(
                &lowered,
                &inst.initial_state(),
                &format!("qfm seed={seed} depth={depth:?}"),
            );
        }
    }
}

/// End-to-end replay equivalence: a checkpoint table (which replays via
/// the fused plan) must agree with a hand-rolled per-gate replay for
/// random error-insertion patterns on a real transpiled QFA circuit.
#[test]
fn fused_replay_matches_per_gate_replay_with_random_insertions() {
    let mut rng = Xoshiro256StarStar::new(0xC0FFEE);
    let inst = AddInstance::random(3, 3, 1, 2, &mut rng);
    let lowered = transpile(&inst.circuit(AqftDepth::Full), Basis::CxPlus1q);
    let initial = inst.initial_state();
    let table = CheckpointTable::build(lowered.clone(), &initial, 7);

    let paulis = [|q| Gate::X(q), |q| Gate::Y(q), |q| Gate::Z(q)];
    for trial in 0..24usize {
        let count = trial % 4;
        let mut sites: Vec<usize> = (0..count)
            .map(|_| rng.next_bounded(lowered.len() as u64) as usize)
            .collect();
        sites.sort_unstable();
        let insertions: Vec<Insertion> = sites
            .iter()
            .map(|&after_gate| Insertion {
                after_gate,
                gate: paulis[rng.next_bounded(3) as usize](
                    rng.next_bounded(u64::from(lowered.num_qubits())) as u32,
                ),
            })
            .collect();

        let fused = table.run_with_insertions(&insertions);

        let mut reference = initial.clone();
        for (i, gate) in lowered.gates().iter().enumerate() {
            reference.apply_gate(gate);
            for ins in insertions.iter().filter(|ins| ins.after_gate == i) {
                reference.apply_gate(&ins.gate);
            }
        }
        assert_states_agree(&fused, &reference, &format!("replay trial={trial}"));
    }
}

/// The acceptance bar for the fusion pass itself: transpiled arithmetic
/// circuits are dominated by `rz·sx·rz·sx·rz` rotations and diagonal
/// runs, so the plan must shrink the op stream substantially.
#[test]
fn full_depth_transpiled_plans_fuse_substantially() {
    let mut rng = Xoshiro256StarStar::new(7);
    let add = AddInstance::random(4, 4, 1, 1, &mut rng);
    let mul = MulInstance::random(2, 2, 1, 1, &mut rng);
    for (label, circuit) in [
        ("qfa", add.circuit(AqftDepth::Full)),
        ("qfm", mul.circuit(AqftDepth::Full)),
    ] {
        let lowered = transpile(&circuit, Basis::CxPlus1q);
        let plan = FusedPlan::compile(&lowered);
        assert!(
            plan.fusion_ratio() >= 1.5,
            "{label}: fusion ratio {:.2} below 1.5 ({} gates -> {} ops)",
            plan.fusion_ratio(),
            plan.num_gates(),
            plan.num_ops()
        );
    }
}
