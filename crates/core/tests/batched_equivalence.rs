//! Batched-trajectory equivalence: replaying K noisy trajectories
//! through one SoA [`BatchedState`] pass must reproduce the sequential
//! replay of each trajectory — on the *real* circuits the pipeline
//! runs (random QFA/QFM instances lowered to the CX + 1q basis), with
//! random Pauli insertions, across checkpoint-resume boundaries, and
//! under both the SIMD and scalar kernel paths.
//!
//! The batched kernels are bit-exact by construction, so every check
//! here asserts **exact** amplitude equality — stronger than the 1e-10
//! the fused-plan equivalence suite tolerates.
//!
//! Seeded loops rather than `proptest` so the checks run in every
//! environment (the offline proptest stub cannot generate values).

use qfab_circuit::gate::Gate;
use qfab_circuit::Circuit;
use qfab_core::{AddInstance, AqftDepth, MulInstance};
use qfab_math::rng::Xoshiro256StarStar;
use qfab_sim::{BatchedState, CheckpointTable, FusedPlan, Insertion, StateVector};
use qfab_transpile::{transpile, Basis};
use std::collections::BTreeMap;

fn assert_lane_bit_identical(
    batch: &BatchedState,
    lane: usize,
    reference: &StateVector,
    label: &str,
) {
    let got = batch.lane_amplitudes(lane);
    let want = reference.amplitudes();
    assert_eq!(got.len(), want.len(), "{label}: dimension mismatch");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        assert!(
            a == b,
            "{label}: lane {lane} amplitude {i} not bit-identical (batched {a}, sequential {b})"
        );
    }
}

fn random_trajectory(rng: &mut Xoshiro256StarStar, gates: usize, qubits: u32) -> Vec<Insertion> {
    let paulis = [
        Gate::X as fn(u32) -> Gate,
        Gate::Y as fn(u32) -> Gate,
        Gate::Z as fn(u32) -> Gate,
    ];
    let count = 1 + rng.next_bounded(3) as usize;
    let mut sites: Vec<usize> = (0..count)
        .map(|_| rng.next_bounded(gates as u64) as usize)
        .collect();
    sites.sort_unstable();
    sites
        .into_iter()
        .map(|after_gate| Insertion {
            after_gate,
            gate: paulis[rng.next_bounded(3) as usize](rng.next_bounded(u64::from(qubits)) as u32),
        })
        .collect()
}

/// Draws random trajectories, groups them by restart checkpoint (the
/// invariant the pipeline maintains), batches each group K lanes at a
/// time, and checks every lane against its sequential replay.
fn check_batched_replay(
    lowered: &Circuit,
    initial: &StateVector,
    interval: usize,
    seed: u64,
    label: &str,
) {
    let table = CheckpointTable::build(lowered.clone(), initial, interval);
    let mut rng = Xoshiro256StarStar::new(seed);
    for k in [1usize, 3, 8] {
        let mut groups: BTreeMap<usize, Vec<Vec<Insertion>>> = BTreeMap::new();
        for _ in 0..(4 * k) {
            let traj = random_trajectory(&mut rng, lowered.len(), lowered.num_qubits());
            let j = table.checkpoint_index(&traj).expect("non-empty trajectory");
            groups.entry(j).or_default().push(traj);
        }
        for (j, trajs) in groups {
            for chunk in trajs.chunks(k) {
                let lanes: Vec<&[Insertion]> = chunk.iter().map(|t| t.as_slice()).collect();
                let batch = table.run_batch_from(j, &lanes);
                for (lane, traj) in chunk.iter().enumerate() {
                    let sequential = table.run_with_insertions(traj);
                    assert_lane_bit_identical(
                        &batch,
                        lane,
                        &sequential,
                        &format!("{label} K={k} checkpoint={j}"),
                    );
                }
            }
        }
    }
}

#[test]
fn batched_replay_bit_identical_on_random_qfa() {
    let mut rng = Xoshiro256StarStar::new(0xBA7C_1);
    for seed in 0..3u64 {
        let inst = AddInstance::random(4, 4, 1 + (seed as usize % 2), 2, &mut rng);
        for depth in [AqftDepth::Full, AqftDepth::Limited(2)] {
            let lowered = transpile(&inst.circuit(depth), Basis::CxPlus1q);
            check_batched_replay(
                &lowered,
                &inst.initial_state(),
                11,
                0x5EED + seed,
                &format!("qfa seed={seed} depth={depth:?}"),
            );
        }
    }
}

#[test]
fn batched_replay_bit_identical_on_random_qfm() {
    let mut rng = Xoshiro256StarStar::new(0xBA7C_2);
    for seed in 0..2u64 {
        let inst = MulInstance::random(2, 2, 2, 1 + (seed as usize % 2), &mut rng);
        for depth in [AqftDepth::Full, AqftDepth::Limited(3)] {
            let lowered = transpile(&inst.circuit(depth), Basis::CxPlus1q);
            check_batched_replay(
                &lowered,
                &inst.initial_state(),
                17,
                0xF00D + seed,
                &format!("qfm seed={seed} depth={depth:?}"),
            );
        }
    }
}

/// Checkpoint-resume boundaries: pin the first insertion to every gate
/// around each checkpoint multiple (j·interval − 1, j·interval,
/// j·interval + 1), where mid-op entry forces the whole batch down the
/// per-gate path.
#[test]
fn batched_replay_bit_identical_at_checkpoint_boundaries() {
    let mut rng = Xoshiro256StarStar::new(0xBA7C_3);
    let inst = AddInstance::random(3, 3, 1, 2, &mut rng);
    let lowered = transpile(&inst.circuit(AqftDepth::Full), Basis::CxPlus1q);
    let initial = inst.initial_state();
    let interval = 7;
    let table = CheckpointTable::build(lowered.clone(), &initial, interval);
    let n = lowered.num_qubits();
    let boundary_sites: Vec<usize> = (0..table.num_checkpoints())
        .flat_map(|j| {
            let g = j * interval;
            [g.saturating_sub(1), g, g + 1]
        })
        .filter(|&g| g < lowered.len())
        .collect();
    for &site in &boundary_sites {
        // Three lanes sharing the boundary site with different Paulis,
        // one with an extra later insertion — all restart from the same
        // checkpoint.
        let lane_trajs: Vec<Vec<Insertion>> = vec![
            vec![Insertion {
                after_gate: site,
                gate: Gate::X(rng.next_bounded(u64::from(n)) as u32),
            }],
            vec![Insertion {
                after_gate: site,
                gate: Gate::Z(rng.next_bounded(u64::from(n)) as u32),
            }],
            vec![
                Insertion {
                    after_gate: site,
                    gate: Gate::Y(rng.next_bounded(u64::from(n)) as u32),
                },
                Insertion {
                    after_gate: site + rng.next_bounded((lowered.len() - site) as u64) as usize,
                    gate: Gate::X(rng.next_bounded(u64::from(n)) as u32),
                },
            ],
        ];
        let j = table.checkpoint_index(&lane_trajs[0]).unwrap();
        assert!(lane_trajs
            .iter()
            .all(|t| table.checkpoint_index(t) == Some(j)));
        let lanes: Vec<&[Insertion]> = lane_trajs.iter().map(|t| t.as_slice()).collect();
        let batch = table.run_batch_from(j, &lanes);
        for (lane, traj) in lane_trajs.iter().enumerate() {
            let sequential = table.run_with_insertions(traj);
            assert_lane_bit_identical(&batch, lane, &sequential, &format!("boundary site={site}"));
        }
    }
}

/// The SIMD and scalar batched paths must agree bit-for-bit on a full
/// transpiled replay. This runs in every environment: when AVX2 is
/// unavailable (or forced off via `QFAB_SIMD=off`) both states take the
/// scalar path and the check degenerates to determinism — it still
/// runs, per the coverage requirement, rather than being compiled out.
#[test]
fn simd_and_scalar_batched_replay_agree() {
    let mut rng = Xoshiro256StarStar::new(0xBA7C_4);
    let inst = AddInstance::random(3, 4, 1, 2, &mut rng);
    let lowered = transpile(&inst.circuit(AqftDepth::Full), Basis::CxPlus1q);
    let initial = inst.initial_state();
    let plan = FusedPlan::compile(&lowered);
    let k = 5;
    let lane_trajs: Vec<Vec<Insertion>> = (0..k)
        .map(|_| random_trajectory(&mut rng, lowered.len(), lowered.num_qubits()))
        .collect();
    let lanes: Vec<&[Insertion]> = lane_trajs.iter().map(|t| t.as_slice()).collect();
    let mut fast = BatchedState::broadcast(&initial, k);
    let mut slow = fast.clone();
    fast.set_simd(true);
    slow.set_simd(false);
    plan.run_batch(&mut fast, 0, &lanes);
    plan.run_batch(&mut slow, 0, &lanes);
    for lane in 0..k {
        assert_eq!(
            fast.lane_amplitudes(lane),
            slow.lane_amplitudes(lane),
            "SIMD/scalar divergence on lane {lane}"
        );
    }
}
