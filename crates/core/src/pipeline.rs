//! The noisy evaluation pipeline.
//!
//! Everything between "an arithmetic instance" and "a count table" —
//! the engine behind every data point in the paper's figures:
//!
//! 1. transpile the arithmetic circuit to CX + atomic 1q gates (the
//!    granularity the paper's noise model attaches errors at);
//! 2. build the noiseless [`CheckpointTable`] from the instance's
//!    initial state ([`PreparedInstance`] — reusable across noise
//!    models, since the clean states don't depend on the error rate);
//! 3. bind a noise model ([`NoisyRun`]) and split the shot budget into
//!    clean shots (drawn in one batch from the noiseless output
//!    distribution) and noisy shots (each sampling a conditioned error
//!    trajectory, replaying from the nearest checkpoint, and drawing
//!    one measurement);
//! 4. optionally corrupt outcomes with readout error; tabulate.
//!
//! The pipeline is deterministic given `(instance, model, config,
//! seed)` regardless of thread scheduling.

use crate::depth::AqftDepth;
use crate::metric::{evaluate_instance, InstanceOutcome};
use crate::ops::{AddInstance, MulInstance};
use qfab_circuit::Circuit;
use qfab_math::rng::Xoshiro256StarStar;
use qfab_math::sampling::AliasTable;
use qfab_noise::{NoiseModel, TrajectoryPlan};
use qfab_sim::{CheckpointTable, Counts, Insertion, ShotSampler, StateVector};
use qfab_telemetry as telemetry;
use qfab_telemetry::trace;
use qfab_transpile::{transpile, Basis};
use std::collections::BTreeMap;

/// Tunable knobs of a noisy evaluation.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Shots per instance (the paper uses 2048).
    pub shots: u64,
    /// Memory budget for the noiseless checkpoint table, in bytes.
    pub checkpoint_budget: usize,
    /// Run the peephole optimizer before simulating (the paper does
    /// not; default off).
    pub optimize: bool,
    /// Use per-gate-kernel parallelism inside the state vector (turn
    /// off when an outer loop already saturates the cores).
    pub inner_parallel: bool,
    /// Noisy trajectories replayed together in one SoA batch
    /// ([`qfab_sim::BatchedState`]); `1` forces sequential replay.
    /// A pure performance knob — sampled outcomes are bit-identical at
    /// any value, so like `checkpoint_budget` and `inner_parallel` it
    /// is excluded from the store identity.
    pub batch_shots: usize,
    /// Record per-shot provenance (outcome + insertion multiset) into a
    /// [`ShotLog`] alongside the counts. Pure observability: the log is
    /// derived from values the sampler produces anyway, so sampled
    /// outcomes are byte-identical with the ledger on or off — hence,
    /// like the performance knobs, excluded from the store identity.
    pub shots_ledger: bool,
}

/// Default trajectory batch width: 8 lanes keeps the working set of a
/// 17-qubit batch (~16 MiB) cache-friendly while amortizing each op's
/// sweep overhead and filling the AVX2 lanes.
pub const DEFAULT_BATCH_SHOTS: usize = 8;

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            shots: 2048,
            checkpoint_budget: CheckpointTable::DEFAULT_BUDGET_BYTES,
            optimize: false,
            inner_parallel: false,
            batch_shots: DEFAULT_BATCH_SHOTS,
            shots_ledger: false,
        }
    }
}

/// Cap on fully-detailed noisy shots a [`ShotLog`] keeps per cell.
/// Beyond it only the outcome tally accrues (with a truncation count),
/// so aggregate failure statistics stay exact while the record size
/// stays bounded.
pub const MAX_LOGGED_SHOTS: usize = 4096;

/// One logged noisy shot: the final tabulated outcome (post-readout,
/// when a readout channel is active) and the sampled error insertions.
#[derive(Clone, Debug, PartialEq)]
pub struct LoggedShot {
    /// The outcome index that entered the count table.
    pub outcome: usize,
    /// The trajectory's Pauli insertions, in circuit order.
    pub insertions: Vec<Insertion>,
}

/// Per-cell shot provenance captured during sampling.
///
/// The log is written from values the sampler already produces — the
/// trajectory each noisy shot replays and the outcome that enters the
/// count table — so enabling it cannot perturb the RNG stream or any
/// sampled outcome, on either the sequential or the batched path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShotLog {
    /// Outcome tally of error-free shots.
    pub clean: BTreeMap<usize, u64>,
    /// Detailed noisy shots, in draw order, capped at
    /// [`MAX_LOGGED_SHOTS`].
    pub noisy: Vec<LoggedShot>,
    /// Outcome tally of noisy shots beyond the cap.
    pub truncated: BTreeMap<usize, u64>,
}

impl ShotLog {
    /// Records a clean shot's final outcome.
    pub fn push_clean(&mut self, outcome: usize) {
        *self.clean.entry(outcome).or_insert(0) += 1;
    }

    /// Records a noisy shot; past the cap only the outcome is tallied.
    pub fn push_noisy(&mut self, outcome: usize, insertions: Vec<Insertion>) {
        if self.noisy.len() < MAX_LOGGED_SHOTS {
            self.noisy.push(LoggedShot {
                outcome,
                insertions,
            });
        } else {
            *self.truncated.entry(outcome).or_insert(0) += 1;
        }
    }

    /// Number of clean shots recorded.
    pub fn clean_shots(&self) -> u64 {
        self.clean.values().sum()
    }

    /// Number of noisy shots tallied past the detail cap.
    pub fn truncated_shots(&self) -> u64 {
        self.truncated.values().sum()
    }

    /// Total shots the log accounts for.
    pub fn total_shots(&self) -> u64 {
        self.clean_shots() + self.noisy.len() as u64 + self.truncated_shots()
    }
}

/// A transpiled circuit with its noiseless checkpoint table and output
/// distribution — everything about an instance that does *not* depend
/// on the noise model. Build once, then bind any number of models.
pub struct PreparedInstance {
    table: CheckpointTable,
    clean_dist: AliasTable,
    num_qubits: u32,
    transpiled_gates: usize,
    batch_shots: usize,
}

impl PreparedInstance {
    /// Transpiles `circuit` and simulates the noiseless run, snapshotting
    /// checkpoints.
    pub fn new(circuit: &Circuit, mut initial: StateVector, config: &RunConfig) -> Self {
        let _span = telemetry::histogram("pipeline.prepare_ns").span();
        let _trace = trace::span_args(
            "pipeline.prepare",
            &[("gates", trace::ArgValue::U64(circuit.len() as u64))],
        );
        telemetry::counter("pipeline.instances_prepared").incr();
        let mut lowered = transpile(circuit, Basis::CxPlus1q);
        if config.optimize {
            lowered = qfab_transpile::optimize(&lowered).0;
        }
        initial.set_parallel(config.inner_parallel);
        let transpiled_gates = lowered.len();
        let num_qubits = initial.num_qubits();
        let table = CheckpointTable::build_with_budget(lowered, &initial, config.checkpoint_budget);
        let clean_dist = AliasTable::new(&table.final_state().probabilities());
        Self {
            table,
            clean_dist,
            num_qubits,
            transpiled_gates,
            batch_shots: config.batch_shots,
        }
    }

    /// The transpiled gate count (the paper's Table I granularity).
    pub fn transpiled_gates(&self) -> usize {
        self.transpiled_gates
    }

    /// The transpiled circuit.
    pub fn circuit(&self) -> &Circuit {
        self.table.circuit()
    }

    /// The noiseless output state.
    pub fn clean_state(&self) -> &StateVector {
        self.table.final_state()
    }

    /// Binds a noise model, producing a sampler.
    pub fn noisy<'a>(&'a self, model: &NoiseModel) -> NoisyRun<'a> {
        let _span = telemetry::histogram("pipeline.bind_ns").span();
        let _trace = trace::span("pipeline.bind");
        NoisyRun {
            prep: self,
            plan: TrajectoryPlan::new(self.table.circuit(), model),
            readout: model.readout().copied(),
        }
    }
}

/// A prepared instance bound to a noise model, ready to sample shots.
pub struct NoisyRun<'a> {
    prep: &'a PreparedInstance,
    plan: TrajectoryPlan,
    readout: Option<qfab_noise::ReadoutError>,
}

impl NoisyRun<'_> {
    /// Convenience one-step preparation (owned variant): transpile,
    /// checkpoint, and bind in one call. For sweeps over many models
    /// prefer [`PreparedInstance::new`] + [`PreparedInstance::noisy`].
    pub fn prepare(
        circuit: &Circuit,
        initial: StateVector,
        model: &NoiseModel,
        config: &RunConfig,
    ) -> OwnedNoisyRun {
        let prep = PreparedInstance::new(circuit, initial, config);
        let plan = TrajectoryPlan::new(prep.table.circuit(), model);
        OwnedNoisyRun {
            readout: model.readout().copied(),
            prep,
            plan,
        }
    }

    /// The transpiled gate count (diagnostic).
    pub fn transpiled_gates(&self) -> usize {
        self.prep.transpiled_gates
    }

    /// Probability that a shot is error-free under the model.
    pub fn clean_prob(&self) -> f64 {
        self.plan.clean_prob()
    }

    /// The noiseless output state.
    pub fn clean_state(&self) -> &StateVector {
        self.prep.table.final_state()
    }

    /// Samples a batch of `shots` measurements.
    pub fn sample_counts(&self, shots: u64, rng: &mut Xoshiro256StarStar) -> Counts {
        sample_counts_impl(
            self.prep,
            &self.plan,
            self.readout.as_ref(),
            shots,
            rng,
            None,
        )
    }

    /// Samples `shots` measurements while recording per-shot
    /// provenance. The counts are byte-identical to
    /// [`Self::sample_counts`] on the same RNG stream.
    pub fn sample_counts_logged(
        &self,
        shots: u64,
        rng: &mut Xoshiro256StarStar,
    ) -> (Counts, ShotLog) {
        let mut log = ShotLog::default();
        let counts = sample_counts_impl(
            self.prep,
            &self.plan,
            self.readout.as_ref(),
            shots,
            rng,
            Some(&mut log),
        );
        (counts, log)
    }

    /// The bound trajectory plan (site and channel metadata).
    pub fn plan(&self) -> &TrajectoryPlan {
        &self.plan
    }
}

/// An owning variant of [`NoisyRun`] for single-model callers.
pub struct OwnedNoisyRun {
    prep: PreparedInstance,
    plan: TrajectoryPlan,
    readout: Option<qfab_noise::ReadoutError>,
}

impl OwnedNoisyRun {
    /// The transpiled gate count (diagnostic).
    pub fn transpiled_gates(&self) -> usize {
        self.prep.transpiled_gates
    }

    /// Probability that a shot is error-free under the model.
    pub fn clean_prob(&self) -> f64 {
        self.plan.clean_prob()
    }

    /// The noiseless output state.
    pub fn clean_state(&self) -> &StateVector {
        self.prep.table.final_state()
    }

    /// Samples a batch of `shots` measurements.
    pub fn sample_counts(&self, shots: u64, rng: &mut Xoshiro256StarStar) -> Counts {
        sample_counts_impl(
            &self.prep,
            &self.plan,
            self.readout.as_ref(),
            shots,
            rng,
            None,
        )
    }

    /// Samples `shots` measurements while recording per-shot
    /// provenance. The counts are byte-identical to
    /// [`Self::sample_counts`] on the same RNG stream.
    pub fn sample_counts_logged(
        &self,
        shots: u64,
        rng: &mut Xoshiro256StarStar,
    ) -> (Counts, ShotLog) {
        let mut log = ShotLog::default();
        let counts = sample_counts_impl(
            &self.prep,
            &self.plan,
            self.readout.as_ref(),
            shots,
            rng,
            Some(&mut log),
        );
        (counts, log)
    }

    /// The bound trajectory plan (site and channel metadata).
    pub fn plan(&self) -> &TrajectoryPlan {
        &self.plan
    }
}

fn sample_counts_impl(
    prep: &PreparedInstance,
    plan: &TrajectoryPlan,
    readout: Option<&qfab_noise::ReadoutError>,
    shots: u64,
    rng: &mut Xoshiro256StarStar,
    mut log: Option<&mut ShotLog>,
) -> Counts {
    let _span = telemetry::histogram("pipeline.sample_ns").span();
    let sample_trace =
        trace::span_args("pipeline.sample", &[("shots", trace::ArgValue::U64(shots))]);
    let mut counts = Counts::new();
    let clean = if plan.num_sites() == 0 {
        shots
    } else {
        qfab_math::sampling::sample_binomial(shots, plan.clean_prob(), rng)
    };
    if telemetry::enabled() {
        telemetry::counter("pipeline.shots.clean").add(clean);
        telemetry::counter("pipeline.shots.noisy").add(shots - clean);
    }
    // Returns the outcome that entered the table so the shot log can
    // record post-readout values (what the counts actually saw).
    let record = |counts: &mut Counts, outcome: usize, rng: &mut Xoshiro256StarStar| -> usize {
        let outcome = match readout {
            Some(ro) => ro.apply(outcome, prep.num_qubits, rng),
            None => outcome,
        };
        counts.add(outcome, 1);
        outcome
    };
    for _ in 0..clean {
        let outcome = prep.clean_dist.sample(rng);
        let tabulated = record(&mut counts, outcome, rng);
        if let Some(log) = log.as_deref_mut() {
            log.push_clean(tabulated);
        }
    }
    let noisy = shots - clean;
    let noisy_trace = trace::span_args(
        "pipeline.sample.noisy_batch",
        &[("noisy", trace::ArgValue::U64(noisy))],
    );
    let mut insertions_total = 0u64;
    // Readout error draws a variable number of uniforms per shot (one
    // per flipped-candidate qubit), so only the sequential loop can
    // keep its RNG stream aligned; batched replay requires outcomes to
    // be resolvable from pre-drawn uniforms.
    let batch_k = if readout.is_some() {
        1
    } else {
        prep.batch_shots.max(1)
    };
    if batch_k <= 1 {
        for _ in 0..noisy {
            let trajectory = plan.sample_noisy(rng);
            insertions_total += trajectory.len() as u64;
            let state = prep.table.run_with_insertions(&trajectory);
            let outcome = ShotSampler::sample_once(&state, rng);
            let tabulated = record(&mut counts, outcome, rng);
            if let Some(log) = log.as_deref_mut() {
                log.push_noisy(tabulated, trajectory);
            }
        }
    } else {
        // Phase 1: pre-draw every trajectory and its measurement
        // uniform in exactly the order the sequential loop consumes the
        // RNG — so batching cannot change a single sampled outcome.
        let draws: Vec<(Vec<Insertion>, f64)> = (0..noisy)
            .map(|_| {
                let trajectory = plan.sample_noisy(rng);
                insertions_total += trajectory.len() as u64;
                let u = rng.next_f64();
                (trajectory, u)
            })
            .collect();
        // Phase 2: resolve outcomes. Error-free trajectories read the
        // shared final state; the rest are grouped by restart
        // checkpoint and replayed `batch_k` lanes at a time.
        let mut outcomes = vec![0usize; draws.len()];
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (si, (trajectory, u)) in draws.iter().enumerate() {
            match prep.table.checkpoint_index(trajectory) {
                None => {
                    if telemetry::enabled() {
                        telemetry::counter("sim.replay.clean").incr();
                    }
                    outcomes[si] =
                        ShotSampler::sample_index(prep.table.final_state().amplitudes(), *u);
                }
                Some(j) => groups.entry(j).or_default().push(si),
            }
        }
        for (j, indices) in groups {
            for chunk in indices.chunks(batch_k) {
                if let [si] = *chunk {
                    let state = prep.table.run_with_insertions(&draws[si].0);
                    outcomes[si] = ShotSampler::sample_index(state.amplitudes(), draws[si].1);
                } else {
                    let lanes: Vec<&[Insertion]> =
                        chunk.iter().map(|&si| draws[si].0.as_slice()).collect();
                    let batch = prep.table.run_batch_from(j, &lanes);
                    for (lane, &si) in chunk.iter().enumerate() {
                        outcomes[si] = batch.sample_lane(lane, draws[si].1);
                    }
                }
            }
        }
        if telemetry::enabled() {
            // Every noisy shot resolved by inverse-CDF scan, batched or
            // not — keep the counter's sequential semantics.
            telemetry::counter("sim.sample.single_shots").add(noisy);
        }
        // Tabulate in original shot order (`readout` is `None` on this
        // path, so `record` leaves the RNG untouched). Trajectories are
        // consumed into the log here, after replay no longer needs them
        // — the log therefore sees shots in the same draw order as the
        // sequential path.
        for (&outcome, (trajectory, _)) in outcomes.iter().zip(draws) {
            let tabulated = record(&mut counts, outcome, rng);
            if let Some(log) = log.as_deref_mut() {
                log.push_noisy(tabulated, trajectory);
            }
        }
    }
    noisy_trace.end_with_args(&[("insertions", trace::ArgValue::U64(insertions_total))]);
    drop(sample_trace);
    counts
}

/// Runs one addition instance end to end and scores it.
pub fn run_add_instance(
    instance: &AddInstance,
    depth: AqftDepth,
    model: &NoiseModel,
    config: &RunConfig,
    seed: u64,
) -> (Counts, InstanceOutcome) {
    let mut rng = Xoshiro256StarStar::for_stream(seed, 0);
    let run = NoisyRun::prepare(
        &instance.circuit(depth),
        instance.initial_state(),
        model,
        config,
    );
    let counts = run.sample_counts(config.shots, &mut rng);
    let outcome = evaluate_instance(&counts, &instance.expected_outputs());
    (counts, outcome)
}

/// Runs one multiplication instance end to end and scores it.
pub fn run_mul_instance(
    instance: &MulInstance,
    depth: AqftDepth,
    model: &NoiseModel,
    config: &RunConfig,
    seed: u64,
) -> (Counts, InstanceOutcome) {
    let mut rng = Xoshiro256StarStar::for_stream(seed, 0);
    let run = NoisyRun::prepare(
        &instance.circuit(depth),
        instance.initial_state(),
        model,
        config,
    );
    let counts = run.sample_counts(config.shots, &mut rng);
    let outcome = evaluate_instance(&counts, &instance.expected_outputs());
    (counts, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qint::Qinteger;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(seed)
    }

    fn small_add() -> AddInstance {
        AddInstance {
            n: 3,
            m: 4,
            x: Qinteger::new(3, vec![5]),
            y: Qinteger::new(4, vec![6]),
        }
    }

    #[test]
    fn noiseless_run_puts_all_shots_on_expected() {
        let inst = small_add();
        let config = RunConfig {
            shots: 256,
            ..RunConfig::default()
        };
        let (counts, outcome) =
            run_add_instance(&inst, AqftDepth::Full, &NoiseModel::ideal(), &config, 7);
        assert!(outcome.success);
        assert_eq!(counts.total_shots(), 256);
        let expected = inst.expected_outputs();
        assert_eq!(counts.get(expected[0]), 256);
    }

    #[test]
    fn pipeline_is_deterministic_per_seed() {
        let inst = small_add();
        let model = NoiseModel::depolarizing(0.02, 0.05);
        let config = RunConfig {
            shots: 128,
            ..RunConfig::default()
        };
        let (a, oa) = run_add_instance(&inst, AqftDepth::Full, &model, &config, 99);
        let (b, ob) = run_add_instance(&inst, AqftDepth::Full, &model, &config, 99);
        assert_eq!(a, b);
        assert_eq!(oa, ob);
        let (c, _) = run_add_instance(&inst, AqftDepth::Full, &model, &config, 100);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn prepared_instance_reuse_across_models_matches_fresh_runs() {
        let inst = small_add();
        let config = RunConfig {
            shots: 200,
            ..RunConfig::default()
        };
        let prep = PreparedInstance::new(
            &inst.circuit(AqftDepth::Full),
            inst.initial_state(),
            &config,
        );
        for p in [0.005, 0.02] {
            let model = NoiseModel::only_2q_depolarizing(p);
            let shared = prep.noisy(&model).sample_counts(200, &mut rng(4));
            let fresh = NoisyRun::prepare(
                &inst.circuit(AqftDepth::Full),
                inst.initial_state(),
                &model,
                &config,
            )
            .sample_counts(200, &mut rng(4));
            assert_eq!(
                shared, fresh,
                "shared-prep sampling must match fresh at p={p}"
            );
        }
    }

    /// Batching is a pure performance knob: any `batch_shots` must
    /// produce byte-identical counts — same outcomes from the same RNG
    /// stream — as fully sequential replay.
    #[test]
    fn batched_sampling_is_byte_identical_to_sequential() {
        let inst = small_add();
        for p in [0.01, 0.08] {
            let model = NoiseModel::depolarizing(p, 2.0 * p);
            let sequential = RunConfig {
                shots: 300,
                batch_shots: 1,
                ..RunConfig::default()
            };
            let (a, oa) = run_add_instance(&inst, AqftDepth::Full, &model, &sequential, 42);
            for k in [3usize, 8, 32] {
                let batched = RunConfig {
                    batch_shots: k,
                    ..sequential
                };
                let (b, ob) = run_add_instance(&inst, AqftDepth::Full, &model, &batched, 42);
                assert_eq!(a, b, "counts diverged at p={p}, K={k}");
                assert_eq!(oa, ob);
            }
        }
    }

    /// Readout error forces the sequential path (its RNG consumption is
    /// outcome-dependent), so batching must not change outcomes there
    /// either.
    #[test]
    fn batched_sampling_with_readout_matches_sequential() {
        let inst = small_add();
        let model = NoiseModel::depolarizing(0.02, 0.04)
            .with_readout(qfab_noise::ReadoutError::symmetric(0.03));
        let sequential = RunConfig {
            shots: 200,
            batch_shots: 1,
            ..RunConfig::default()
        };
        let batched = RunConfig {
            batch_shots: 8,
            ..sequential
        };
        let (a, _) = run_add_instance(&inst, AqftDepth::Full, &model, &sequential, 9);
        let (b, _) = run_add_instance(&inst, AqftDepth::Full, &model, &batched, 9);
        assert_eq!(a, b);
    }

    /// The shot log is pure observability: logged sampling must produce
    /// byte-identical counts from the same RNG stream, and the log must
    /// account for every shot.
    #[test]
    fn logged_sampling_matches_unlogged_counts() {
        let inst = small_add();
        let model = NoiseModel::depolarizing(0.02, 0.05);
        let run = NoisyRun::prepare(
            &inst.circuit(AqftDepth::Full),
            inst.initial_state(),
            &model,
            &RunConfig::default(),
        );
        let plain = run.sample_counts(400, &mut rng(21));
        let (logged, log) = run.sample_counts_logged(400, &mut rng(21));
        assert_eq!(plain, logged);
        assert_eq!(log.total_shots(), 400);
        // Every logged outcome is in the count table.
        let mut from_log: BTreeMap<usize, u64> = log.clean.clone();
        for shot in &log.noisy {
            assert!(!shot.insertions.is_empty(), "noisy shots carry insertions");
            *from_log.entry(shot.outcome).or_insert(0) += 1;
        }
        for (&o, &c) in &log.truncated {
            *from_log.entry(o).or_insert(0) += c;
        }
        for (o, c) in from_log {
            assert_eq!(logged.get(o), c, "outcome {o}");
        }
    }

    /// Batched replay must produce the identical shot log as sequential
    /// replay — same outcomes, same trajectories, same draw order.
    #[test]
    fn batched_shot_log_is_identical_to_sequential() {
        let inst = small_add();
        let model = NoiseModel::depolarizing(0.03, 0.06);
        let sequential = RunConfig {
            shots: 300,
            batch_shots: 1,
            ..RunConfig::default()
        };
        let prep_seq = PreparedInstance::new(
            &inst.circuit(AqftDepth::Full),
            inst.initial_state(),
            &sequential,
        );
        let (ca, la) = prep_seq
            .noisy(&model)
            .sample_counts_logged(300, &mut rng(8));
        let batched = RunConfig {
            batch_shots: 8,
            ..sequential
        };
        let prep_bat = PreparedInstance::new(
            &inst.circuit(AqftDepth::Full),
            inst.initial_state(),
            &batched,
        );
        let (cb, lb) = prep_bat
            .noisy(&model)
            .sample_counts_logged(300, &mut rng(8));
        assert_eq!(ca, cb);
        assert_eq!(la, lb);
    }

    /// With readout error active the log records post-readout outcomes
    /// (what the count table saw).
    #[test]
    fn shot_log_records_post_readout_outcomes() {
        let inst = small_add();
        let model = NoiseModel::depolarizing(0.02, 0.04)
            .with_readout(qfab_noise::ReadoutError::symmetric(0.05));
        let run = NoisyRun::prepare(
            &inst.circuit(AqftDepth::Full),
            inst.initial_state(),
            &model,
            &RunConfig::default(),
        );
        let (counts, log) = run.sample_counts_logged(500, &mut rng(13));
        let mut tally: BTreeMap<usize, u64> = log.clean.clone();
        for shot in &log.noisy {
            *tally.entry(shot.outcome).or_insert(0) += 1;
        }
        for (&o, &c) in &log.truncated {
            *tally.entry(o).or_insert(0) += c;
        }
        let total: u64 = tally.values().sum();
        assert_eq!(total, 500);
        for (o, c) in tally {
            assert_eq!(counts.get(o), c, "outcome {o}");
        }
    }

    #[test]
    fn shot_log_truncates_past_cap() {
        let mut log = ShotLog::default();
        for i in 0..(MAX_LOGGED_SHOTS + 10) {
            log.push_noisy(i % 3, vec![]);
        }
        assert_eq!(log.noisy.len(), MAX_LOGGED_SHOTS);
        assert_eq!(log.truncated_shots(), 10);
        assert_eq!(log.total_shots(), (MAX_LOGGED_SHOTS + 10) as u64);
    }

    #[test]
    fn heavy_noise_degrades_success() {
        let inst = small_add();
        let config = RunConfig {
            shots: 512,
            ..RunConfig::default()
        };
        let model = NoiseModel::depolarizing(0.9, 0.9);
        let (counts, _) = run_add_instance(&inst, AqftDepth::Full, &model, &config, 3);
        let expected = inst.expected_outputs();
        assert!(counts.get(expected[0]) < 300);
        assert!(
            counts.distinct() > 10,
            "heavy noise should scatter outcomes"
        );
    }

    #[test]
    fn moderate_noise_still_mostly_succeeds() {
        let inst = small_add();
        let config = RunConfig {
            shots: 512,
            ..RunConfig::default()
        };
        let model = NoiseModel::only_2q_depolarizing(0.01);
        let mut successes = 0;
        for seed in 0..10 {
            let (_, outcome) = run_add_instance(&inst, AqftDepth::Full, &model, &config, seed);
            if outcome.success {
                successes += 1;
            }
        }
        assert!(
            successes >= 8,
            "only {successes}/10 succeeded at 1% 2q error"
        );
    }

    #[test]
    fn clean_prob_reflects_gate_counts() {
        let inst = small_add();
        let run = NoisyRun::prepare(
            &inst.circuit(AqftDepth::Full),
            inst.initial_state(),
            &NoiseModel::only_2q_depolarizing(0.01),
            &RunConfig::default(),
        );
        // QFA(3,4): QFT(4) 6 CP + add 9 CP + IQFT 6 CP = 21 CP = 42 CX.
        let expect = (1.0 - 0.01 * 15.0 / 16.0f64).powi(42);
        assert!((run.clean_prob() - expect).abs() < 1e-9);
    }

    #[test]
    fn sample_counts_totals() {
        let inst = small_add();
        let run = NoisyRun::prepare(
            &inst.circuit(AqftDepth::Full),
            inst.initial_state(),
            &NoiseModel::depolarizing(0.01, 0.01),
            &RunConfig::default(),
        );
        let counts = run.sample_counts(1000, &mut rng(5));
        assert_eq!(counts.total_shots(), 1000);
    }

    #[test]
    fn optimizer_preserves_statistics() {
        let inst = small_add();
        let base = RunConfig {
            shots: 400,
            ..RunConfig::default()
        };
        let optimized = RunConfig {
            optimize: true,
            ..base
        };
        let (a, _) = run_add_instance(&inst, AqftDepth::Full, &NoiseModel::ideal(), &base, 1);
        let (b, _) = run_add_instance(&inst, AqftDepth::Full, &NoiseModel::ideal(), &optimized, 1);
        let expected = inst.expected_outputs()[0];
        assert_eq!(a.get(expected), 400);
        assert_eq!(b.get(expected), 400);
    }

    #[test]
    fn optimizer_collapses_mirrored_basis_circuits() {
        // Transpile the adder first, then append the basis-level inverse:
        // a perfect mirror that the cancellation cascade must erase.
        let inst = small_add();
        let lowered = qfab_transpile::transpile(
            &inst.circuit(AqftDepth::Full),
            qfab_transpile::Basis::CxPlus1q,
        );
        let mut mirrored = lowered.clone();
        mirrored.extend(&lowered.inverse());
        let base = NoisyRun::prepare(
            &mirrored,
            inst.initial_state(),
            &NoiseModel::ideal(),
            &RunConfig::default(),
        );
        let opt = NoisyRun::prepare(
            &mirrored,
            inst.initial_state(),
            &NoiseModel::ideal(),
            &RunConfig {
                optimize: true,
                ..RunConfig::default()
            },
        );
        assert!(base.transpiled_gates() > 0);
        assert_eq!(opt.transpiled_gates(), 0, "mirrored circuit should vanish");
    }

    #[test]
    fn readout_error_scatters_deterministic_output() {
        let inst = small_add();
        let model = NoiseModel::ideal().with_readout(qfab_noise::ReadoutError::symmetric(0.05));
        let run = NoisyRun::prepare(
            &inst.circuit(AqftDepth::Full),
            inst.initial_state(),
            &model,
            &RunConfig::default(),
        );
        let counts = run.sample_counts(2000, &mut rng(6));
        let expected = inst.expected_outputs()[0];
        let hit = counts.get(expected) as f64 / 2000.0;
        // P(no flip on 7 qubits) = 0.95^7 ≈ 0.698.
        assert!((hit - 0.95f64.powi(7)).abs() < 0.05, "hit rate {hit}");
    }

    #[test]
    fn mul_instance_runs_noiselessly() {
        let inst = MulInstance {
            n: 2,
            m: 2,
            x: Qinteger::new(2, vec![3]),
            y: Qinteger::new(2, vec![2]),
        };
        let config = RunConfig {
            shots: 64,
            ..RunConfig::default()
        };
        let (counts, outcome) =
            run_mul_instance(&inst, AqftDepth::Full, &NoiseModel::ideal(), &config, 11);
        assert!(outcome.success);
        assert_eq!(counts.get(inst.expected_outputs()[0]), 64);
    }
}
