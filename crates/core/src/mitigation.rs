//! Error mitigation: zero-noise extrapolation and readout-error
//! inversion.
//!
//! The paper's conclusion defers "the impact of error mitigation" to
//! future work; this module implements the two standard techniques its
//! setting supports:
//!
//! * **Zero-noise extrapolation (ZNE)** — measure an expectation at
//!   amplified noise levels and Richardson-extrapolate to zero noise.
//!   Two amplification mechanisms are provided: *model scaling*
//!   (multiply the depolarizing rates — available because we own the
//!   noise model) and *global folding* `C → C·C⁻¹·C·…` (the hardware
//!   technique, which amplifies noise by odd factors without touching
//!   the model).
//! * **Readout mitigation** — invert the per-qubit measurement
//!   confusion matrix on a register's marginal distribution (the
//!   tensored calibration method).

use crate::pipeline::{NoisyRun, RunConfig};
use qfab_circuit::Circuit;
use qfab_math::rng::Xoshiro256StarStar;
use qfab_noise::{NoiseModel, ReadoutError};
use qfab_sim::{Counts, StateVector};

/// Richardson extrapolation to zero of points `(x_i, y_i)` with
/// distinct non-negative `x_i`: evaluates the degree-(n−1) Lagrange
/// interpolant at `x = 0`.
pub fn richardson_extrapolate(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "extrapolation needs at least two points");
    let mut total = 0.0;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        let mut weight = 1.0;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i != j {
                assert!(
                    (xi - xj).abs() > 1e-12,
                    "extrapolation nodes must be distinct"
                );
                weight *= xj / (xj - xi);
            }
        }
        total += weight * yi;
    }
    total
}

/// Global folding: `C → C · (C⁻¹ · C)^k`, which implements the same
/// unitary with `(2k+1)×` the gates — the standard odd-factor noise
/// amplifier for ZNE on hardware.
pub fn fold_global(circuit: &Circuit, k: usize) -> Circuit {
    let mut out = circuit.clone();
    let inverse = circuit.inverse();
    for _ in 0..k {
        out.extend(&inverse);
        out.extend(circuit);
    }
    out
}

/// The result of a ZNE run.
#[derive(Clone, Debug)]
pub struct ZneResult {
    /// `(noise scale, measured value)` pairs, ascending scale.
    pub points: Vec<(f64, f64)>,
    /// The Richardson-extrapolated zero-noise estimate.
    pub mitigated: f64,
}

/// ZNE by **model scaling**: measures the total probability mass on
/// `expected` outcomes at depolarizing rates `scale × (p1, p2)` for
/// each scale, then extrapolates to zero.
///
/// `scales` must be distinct and ≥ 0 (typically `[1.0, 2.0, 3.0]`).
#[allow(clippy::too_many_arguments)]
pub fn zne_by_model_scaling(
    circuit: &Circuit,
    initial: &StateVector,
    expected: &[usize],
    p1: f64,
    p2: f64,
    scales: &[f64],
    config: &RunConfig,
    seed: u64,
) -> ZneResult {
    let mut points = Vec::with_capacity(scales.len());
    for (i, &scale) in scales.iter().enumerate() {
        let model = if scale == 0.0 {
            NoiseModel::ideal()
        } else {
            NoiseModel::depolarizing(p1 * scale, p2 * scale)
        };
        let run = NoisyRun::prepare(circuit, initial.clone(), &model, config);
        let mut rng = Xoshiro256StarStar::for_stream(seed, i as u64 + 1);
        let counts = run.sample_counts(config.shots, &mut rng);
        points.push((scale, mass_on(&counts, expected)));
    }
    let mitigated = richardson_extrapolate(&points);
    ZneResult { points, mitigated }
}

/// ZNE by **global folding**: runs the circuit folded to odd factors
/// `1, 3, 5, …` under a *fixed* noise model and extrapolates the
/// expected-outcome mass to zero effective noise.
pub fn zne_by_folding(
    circuit: &Circuit,
    initial: &StateVector,
    expected: &[usize],
    model: &NoiseModel,
    folds: &[usize],
    config: &RunConfig,
    seed: u64,
) -> ZneResult {
    let mut points = Vec::with_capacity(folds.len());
    for (i, &k) in folds.iter().enumerate() {
        let folded = fold_global(circuit, k);
        let run = NoisyRun::prepare(&folded, initial.clone(), model, config);
        let mut rng = Xoshiro256StarStar::for_stream(seed, 100 + i as u64);
        let counts = run.sample_counts(config.shots, &mut rng);
        points.push(((2 * k + 1) as f64, mass_on(&counts, expected)));
    }
    let mitigated = richardson_extrapolate(&points);
    ZneResult { points, mitigated }
}

fn mass_on(counts: &Counts, expected: &[usize]) -> f64 {
    let total = counts.total_shots().max(1) as f64;
    expected.iter().map(|&o| counts.get(o) as f64).sum::<f64>() / total
}

/// Inverts a symmetric-or-asymmetric per-qubit readout error on a
/// `k`-qubit marginal distribution (tensored calibration): returns the
/// mitigated probability vector (may contain small negative entries —
/// standard for matrix-inversion mitigation).
pub fn mitigate_readout(counts: &Counts, k: u32, readout: &ReadoutError) -> Vec<f64> {
    assert!((1..=20).contains(&k), "marginal register too wide");
    let dim = 1usize << k;
    let total = counts.total_shots().max(1) as f64;
    let mut probs = vec![0.0f64; dim];
    for (outcome, c) in counts.iter() {
        assert!(
            outcome < dim,
            "outcome {outcome} outside the {k}-qubit register"
        );
        probs[outcome] = c as f64 / total;
    }
    // Per-qubit confusion matrix A = [[1−p01, p10], [p01, 1−p10]] maps
    // true → measured; apply A⁻¹ along every axis in place.
    let det = (1.0 - readout.p01) * (1.0 - readout.p10) - readout.p01 * readout.p10;
    assert!(det.abs() > 1e-9, "confusion matrix is singular");
    let inv = [
        (1.0 - readout.p10) / det,
        -readout.p10 / det,
        -readout.p01 / det,
        (1.0 - readout.p01) / det,
    ];
    for q in 0..k {
        let bit = 1usize << q;
        for base in 0..dim {
            if base & bit != 0 {
                continue;
            }
            let (a, b) = (probs[base], probs[base | bit]);
            probs[base] = inv[0] * a + inv[1] * b;
            probs[base | bit] = inv[2] * a + inv[3] * b;
        }
    }
    probs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::qfa;
    use crate::depth::AqftDepth;
    use crate::ops::AddInstance;
    use crate::qint::Qinteger;

    #[test]
    fn richardson_recovers_linear_and_quadratic() {
        // y = 3 − 2x: two points suffice.
        let lin = richardson_extrapolate(&[(1.0, 1.0), (2.0, -1.0)]);
        assert!((lin - 3.0).abs() < 1e-12);
        // y = 1 − x + 0.5 x²: three points give the exact intercept.
        let f = |x: f64| 1.0 - x + 0.5 * x * x;
        let quad = richardson_extrapolate(&[(1.0, f(1.0)), (2.0, f(2.0)), (3.0, f(3.0))]);
        assert!((quad - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn richardson_rejects_repeated_nodes() {
        let _ = richardson_extrapolate(&[(1.0, 0.5), (1.0, 0.6)]);
    }

    #[test]
    fn folding_preserves_unitary_and_scales_gates() {
        let built = qfa(2, 3, AqftDepth::Full);
        let folded = fold_global(&built.circuit, 1);
        assert_eq!(folded.len(), 3 * built.circuit.len());
        // Semantics preserved: |2>|3> -> |2>|5>.
        let input = built.y.embed(3, built.x.embed(2, 0));
        let mut s = StateVector::basis_state(5, input);
        s.apply_circuit(&folded);
        let out = built.y.embed(5, built.x.embed(2, 0));
        assert!((s.probability(out) - 1.0).abs() < 1e-8);
    }

    fn small_instance() -> AddInstance {
        AddInstance {
            n: 3,
            m: 4,
            x: Qinteger::new(3, vec![5]),
            y: Qinteger::new(4, vec![6]),
        }
    }

    #[test]
    fn zne_model_scaling_improves_the_estimate() {
        let inst = small_instance();
        let circuit = inst.circuit(AqftDepth::Full);
        let expected = inst.expected_outputs();
        let config = RunConfig {
            shots: 3000,
            ..RunConfig::default()
        };
        let (p1, p2) = (0.002, 0.008);
        let zne = zne_by_model_scaling(
            &circuit,
            &inst.initial_state(),
            &expected,
            p1,
            p2,
            &[1.0, 2.0, 3.0],
            &config,
            7,
        );
        let raw = zne.points[0].1;
        assert!(
            raw < 0.97,
            "noise should visibly depress the raw value ({raw})"
        );
        // The true zero-noise value is 1.0: mitigation must get closer.
        assert!(
            (zne.mitigated - 1.0).abs() < (raw - 1.0).abs(),
            "ZNE did not improve: raw {raw}, mitigated {}",
            zne.mitigated
        );
        // Quadratic Richardson amplifies per-point sampling noise
        // several-fold, so the extrapolated value scatters ~±0.05
        // around 1.0 across seeds; bracket accordingly.
        assert!(zne.mitigated > 0.90 && zne.mitigated < 1.1);
    }

    #[test]
    fn zne_folding_points_decrease_with_fold_factor() {
        let inst = small_instance();
        let circuit = inst.circuit(AqftDepth::Full);
        let expected = inst.expected_outputs();
        let config = RunConfig {
            shots: 1500,
            ..RunConfig::default()
        };
        let model = NoiseModel::only_2q_depolarizing(0.004);
        let zne = zne_by_folding(
            &circuit,
            &inst.initial_state(),
            &expected,
            &model,
            &[0, 1, 2],
            &config,
            9,
        );
        assert_eq!(zne.points.len(), 3);
        assert!(
            zne.points[0].1 > zne.points[2].1,
            "folding must amplify noise"
        );
        let raw = zne.points[0].1;
        assert!(
            (zne.mitigated - 1.0).abs() < (raw - 1.0).abs() + 0.02,
            "folded ZNE should not be worse than raw: {} vs {raw}",
            zne.mitigated
        );
    }

    #[test]
    fn readout_mitigation_inverts_corruption() {
        // A known 3-qubit distribution corrupted by readout error, then
        // mitigated: recovers the original within sampling error.
        let readout = ReadoutError::new(0.03, 0.05);
        let true_probs = [0.5, 0.0, 0.2, 0.0, 0.0, 0.3, 0.0, 0.0];
        let mut rng = Xoshiro256StarStar::new(3);
        let mut counts = Counts::new();
        let shots = 200_000u64;
        for _ in 0..shots {
            let mut u = rng.next_f64();
            let mut outcome = 7;
            for (i, &p) in true_probs.iter().enumerate() {
                if u < p {
                    outcome = i;
                    break;
                }
                u -= p;
            }
            counts.add(readout.apply(outcome, 3, &mut rng), 1);
        }
        let mitigated = mitigate_readout(&counts, 3, &readout);
        for (i, &t) in true_probs.iter().enumerate() {
            assert!(
                (mitigated[i] - t).abs() < 0.01,
                "outcome {i}: mitigated {} vs true {t}",
                mitigated[i]
            );
        }
        // Probability is conserved by the inversion.
        let total: f64 = mitigated.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn readout_mitigation_is_identity_at_zero_error() {
        let readout = ReadoutError::symmetric(0.0);
        let counts: Counts = [(0usize, 70u64), (3, 30)].into_iter().collect();
        let mitigated = mitigate_readout(&counts, 2, &readout);
        assert!((mitigated[0] - 0.7).abs() < 1e-12);
        assert!((mitigated[3] - 0.3).abs() < 1e-12);
    }
}
