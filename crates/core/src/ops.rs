//! Arithmetic instance specifications.
//!
//! An *instance* is one concrete arithmetic problem drawn for the
//! evaluation: the operand qintegers, the register geometry, the initial
//! state, the circuit, and the set of correct outputs the success
//! metric compares against.

use crate::adder::qfa;
use crate::depth::AqftDepth;
use crate::multiplier::qfm;
use crate::qint::{product_state, Qinteger};
use qfab_circuit::{Circuit, Layout, Register};
use qfab_math::complex::Complex64;
use qfab_math::rng::Xoshiro256StarStar;
use qfab_sim::StateVector;
use std::collections::BTreeSet;

/// One quantum-Fourier-addition problem: `|x>|y> → |x>|x+y mod 2^m>`.
///
/// Operand values are drawn below `2^n` (both "n-bit" integers, per the
/// paper), so an `m = n+1`-qubit target makes the sum exact.
#[derive(Clone, Debug)]
pub struct AddInstance {
    /// Addend register width.
    pub n: u32,
    /// Target register width.
    pub m: u32,
    /// The addend qinteger (preserved by the operation).
    pub x: Qinteger,
    /// The target qinteger (updated in place).
    pub y: Qinteger,
}

impl AddInstance {
    /// Draws a random instance at superposition orders
    /// `(order_x : order_y)`; values are uniform distinct draws below
    /// `2^n`.
    ///
    /// Note the paper's convention for 1:2 addition: "the order-2 addend
    /// is always stored on the qubit register that is being updated" —
    /// i.e. pass `order_x = 1, order_y = 2`.
    pub fn random(
        n: u32,
        m: u32,
        order_x: usize,
        order_y: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> Self {
        assert!(m >= n, "target must be at least as wide as the addend");
        let bound = 1usize << n;
        Self {
            n,
            m,
            x: Qinteger::random(n, order_x, bound, rng),
            y: Qinteger::random(m, order_y, bound, rng),
        }
    }

    /// The register layout: `x` on qubits `0..n`, `y` on `n..n+m`.
    pub fn layout(&self) -> (Register, Register) {
        let mut layout = Layout::new();
        let x = layout.alloc("x", self.n);
        let y = layout.alloc("y", self.m);
        (x, y)
    }

    /// Total qubits.
    pub fn num_qubits(&self) -> u32 {
        self.n + self.m
    }

    /// Builds the QFA circuit at the given depth.
    pub fn circuit(&self, depth: AqftDepth) -> Circuit {
        qfa(self.n, self.m, depth).circuit
    }

    /// The initial product state (exact amplitudes — the paper's
    /// noise-free initialization).
    pub fn initial_state(&self) -> StateVector {
        let (x_reg, y_reg) = self.layout();
        let entries = product_state(&[&x_reg, &y_reg], &[&self.x, &self.y]);
        StateVector::from_sparse(self.num_qubits(), &entries)
    }

    /// The sparse initial entries (for callers that build states
    /// themselves).
    pub fn initial_entries(&self) -> Vec<(usize, Complex64)> {
        let (x_reg, y_reg) = self.layout();
        product_state(&[&x_reg, &y_reg], &[&self.x, &self.y])
    }

    /// Every correct full-register output bitstring: one per operand
    /// value combination, deduplicated.
    pub fn expected_outputs(&self) -> Vec<usize> {
        let (x_reg, y_reg) = self.layout();
        let modulus = 1usize << self.m;
        let mut out = BTreeSet::new();
        for &xv in self.x.values() {
            for &yv in self.y.values() {
                out.insert(y_reg.embed((xv + yv) % modulus, x_reg.embed(xv, 0)));
            }
        }
        out.into_iter().collect()
    }
}

/// One quantum-Fourier-multiplication problem:
/// `|x>|y>|0> → |x>|y>|x·y>`.
#[derive(Clone, Debug)]
pub struct MulInstance {
    /// First multiplicand width.
    pub n: u32,
    /// Second multiplicand width.
    pub m: u32,
    /// First multiplicand (controls the shift-adds).
    pub x: Qinteger,
    /// Second multiplicand.
    pub y: Qinteger,
}

impl MulInstance {
    /// Draws a random instance at superposition orders
    /// `(order_x : order_y)`.
    pub fn random(
        n: u32,
        m: u32,
        order_x: usize,
        order_y: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> Self {
        Self {
            n,
            m,
            x: Qinteger::random(n, order_x, 1usize << n, rng),
            y: Qinteger::random(m, order_y, 1usize << m, rng),
        }
    }

    /// The register layout: `x`, then `y`, then the product `z`.
    pub fn layout(&self) -> (Register, Register, Register) {
        let mut layout = Layout::new();
        let x = layout.alloc("x", self.n);
        let y = layout.alloc("y", self.m);
        let z = layout.alloc("z", self.n + self.m);
        (x, y, z)
    }

    /// Total qubits (`2(n + m)`).
    pub fn num_qubits(&self) -> u32 {
        2 * (self.n + self.m)
    }

    /// Builds the QFM circuit at the given depth.
    pub fn circuit(&self, depth: AqftDepth) -> Circuit {
        qfm(self.n, self.m, depth).circuit
    }

    /// The initial product state (`z` register at zero).
    pub fn initial_state(&self) -> StateVector {
        let (x_reg, y_reg, _) = self.layout();
        let entries = product_state(&[&x_reg, &y_reg], &[&self.x, &self.y]);
        StateVector::from_sparse(self.num_qubits(), &entries)
    }

    /// Every correct full-register output bitstring.
    pub fn expected_outputs(&self) -> Vec<usize> {
        let (x_reg, y_reg, z_reg) = self.layout();
        let mut out = BTreeSet::new();
        for &xv in self.x.values() {
            for &yv in self.y.values() {
                out.insert(z_reg.embed(xv * yv, y_reg.embed(yv, x_reg.embed(xv, 0))));
            }
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(seed)
    }

    #[test]
    fn add_instance_geometry() {
        let inst = AddInstance::random(7, 8, 1, 2, &mut rng(1));
        assert_eq!(inst.num_qubits(), 15);
        assert_eq!(inst.x.order(), 1);
        assert_eq!(inst.y.order(), 2);
        assert!(inst.x.values().iter().all(|&v| v < 128));
        assert!(inst.y.values().iter().all(|&v| v < 128));
    }

    #[test]
    fn add_expected_outputs_count() {
        let inst = AddInstance {
            n: 3,
            m: 4,
            x: Qinteger::new(3, vec![1, 2]),
            y: Qinteger::new(4, vec![4, 5]),
        };
        // 4 combinations, all distinct because x differs or sum differs.
        assert_eq!(inst.expected_outputs().len(), 4);
    }

    #[test]
    fn add_expected_outputs_dedupe_collisions() {
        // Same x, y values chosen so sums collide: (x=1,y=4) and
        // (x=1,y=4) can't repeat, but (x order 1, y {4,4}) is illegal;
        // instead check x {1,2} with y {5,4}: outputs (1,6),(1,5),(2,7),
        // (2,6) — all distinct. For a real collision need same x:
        let inst = AddInstance {
            n: 3,
            m: 4,
            x: Qinteger::new(3, vec![1]),
            y: Qinteger::new(4, vec![4, 5]),
        };
        assert_eq!(inst.expected_outputs().len(), 2);
    }

    #[test]
    fn add_instance_end_to_end_noiseless() {
        let inst = AddInstance::random(4, 5, 2, 2, &mut rng(2));
        let mut state = inst.initial_state();
        state.apply_circuit(&inst.circuit(AqftDepth::Full));
        let expected = inst.expected_outputs();
        // All probability mass sits on expected outputs, uniformly.
        let total: f64 = expected.iter().map(|&i| state.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9, "mass on expected: {total}");
    }

    #[test]
    fn mul_instance_geometry() {
        let inst = MulInstance::random(4, 4, 2, 1, &mut rng(3));
        assert_eq!(inst.num_qubits(), 16);
        let (_, _, z) = inst.layout();
        assert_eq!(z.len(), 8);
    }

    #[test]
    fn mul_instance_end_to_end_noiseless() {
        let inst = MulInstance::random(3, 3, 2, 2, &mut rng(4));
        let mut state = inst.initial_state();
        state.apply_circuit(&inst.circuit(AqftDepth::Full));
        let expected = inst.expected_outputs();
        let total: f64 = expected.iter().map(|&i| state.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mul_expected_outputs_include_registers() {
        let inst = MulInstance {
            n: 2,
            m: 2,
            x: Qinteger::new(2, vec![2]),
            y: Qinteger::new(2, vec![3]),
        };
        let outs = inst.expected_outputs();
        assert_eq!(outs.len(), 1);
        let (x_reg, y_reg, z_reg) = inst.layout();
        let idx = outs[0];
        assert_eq!(x_reg.extract(idx), 2);
        assert_eq!(y_reg.extract(idx), 3);
        assert_eq!(z_reg.extract(idx), 6);
    }

    #[test]
    fn initial_state_norm_and_support() {
        let inst = AddInstance::random(5, 6, 2, 2, &mut rng(5));
        let s = inst.initial_state();
        assert!((s.norm() - 1.0).abs() < 1e-12);
        let nonzero = s
            .amplitudes()
            .iter()
            .filter(|a| a.norm_sqr() > 1e-12)
            .count();
        assert_eq!(nonzero, 4);
    }
}
