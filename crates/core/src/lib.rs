#![warn(missing_docs)]

//! Noisy approximate quantum Fourier arithmetic — the primary
//! contribution of the reproduced paper.
//!
//! This crate implements, on top of the `qfab-*` substrates:
//!
//! * [`qint`] — quantum integers ("qintegers"): superpositions of integer
//!   states on a register, with the paper's *order of superposition*
//!   terminology, two's-complement signed encodings, and random
//!   instance generation.
//! * [`depth`] — the AQFT approximation-depth parameter, including the
//!   paper's labeling convention where "full" is reported as `m − 1`.
//! * [`qft`] — QFT / AQFT / inverse circuits (paper Fig. 1 structure,
//!   bit-reversed Fourier-basis convention, no terminal swaps).
//! * [`adder`] — Quantum Fourier Addition (Draper-style; paper Fig. 2),
//!   its inverse (subtraction), controlled QFA, and an *approximate
//!   addition step* extension the paper defers to future work.
//! * [`multiplier`] — weighted-sum Quantum Fourier Multiplication
//!   (Ruiz-Pérez-style; paper Fig. 3) built from controlled QFAs.
//! * [`constant`] — classical-operand variants the paper's §III closing
//!   remark describes: constant addition/subtraction in Fourier space,
//!   weighted sums of qubits, and shift-add constant modular
//!   multiplication toward modular exponentiation.
//! * [`ops`] — arithmetic instance specifications (operand value sets,
//!   expected outputs, initial-state preparation).
//! * [`pipeline`] — the noisy evaluation engine: transpile, checkpoint,
//!   split clean/noisy shots, replay trajectories, tabulate counts.
//! * [`metric`] — the paper's success metric and error-bar statistic.

pub mod adder;
pub mod applications;
pub mod constant;
pub mod depth;
pub mod fingerprint;
pub mod initializer;
pub mod metric;
pub mod mitigation;
pub mod multiplier;
pub mod multiplier_fourier;
pub mod ops;
pub mod pipeline;
pub mod qft;
pub mod qint;

pub use adder::{qfa, qfa_add_step, QfaCircuit};
pub use applications::{comparator, qpe_phase, ComparatorCircuit, QpeCircuit};
pub use depth::AqftDepth;
pub use initializer::{disentangle, initialize};
pub use metric::{EnsembleStats, InstanceOutcome};
pub use mitigation::{fold_global, mitigate_readout, richardson_extrapolate, ZneResult};
pub use multiplier::{qfm, QfmCircuit};
pub use multiplier_fourier::{qfm_single_transform, FourierMulCircuit, Signedness};
pub use ops::{AddInstance, MulInstance};
pub use pipeline::{
    LoggedShot, NoisyRun, OwnedNoisyRun, PreparedInstance, RunConfig, ShotLog, MAX_LOGGED_SHOTS,
};
pub use qft::{aqft, aqft_inverse, aqft_natural_order};
pub use qint::Qinteger;
