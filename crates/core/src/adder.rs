//! Quantum Fourier Addition (the Draper adder; paper Fig. 2).
//!
//! `QFA |x>|y> = |x>|(x + y) mod 2^m>` for an `n`-qubit addend `x` and
//! an `m`-qubit target `y`. Choosing `m ≥ n + 1` and inputs below `2^n`
//! makes the addition non-modular (no overflow), exactly as the paper
//! prescribes; `m = n` gives the natural mod-`2^n` adder.
//!
//! Construction: (A)QFT on `y` → phase-addition step → inverse (A)QFT.
//! After the Fourier transform, target qubit `t` (1-based) carries phase
//! `2π·(y mod 2^t)/2^t`; adding `x` means adding `2π·(x mod 2^t)/2^t`,
//! which is the rotation `R_{t−i+1}` controlled by each addend bit
//! `x_i ≤ t`. Target `t` therefore receives `min(t, n)` controlled
//! rotations — for `n = m − 1` this is precisely the paper's Fig. 2
//! (the top qubit gets `R_2 … R_{m}`, no `R_1`).
//!
//! The module also provides:
//! * [`qfa_inverse`] — running the adder backwards subtracts:
//!   `|x>|y> → |x>|(y − x) mod 2^m>`;
//! * controlled QFA ([`cqfa`]) — every gate gains a control qubit
//!   (H→CH, CP→CCP), the building block of the multiplier;
//! * an optional **approximate addition step** (`add_cap`): dropping
//!   addition rotations `R_l` with `l > cap`, the extension the paper
//!   explicitly leaves to future work (§III).

use crate::depth::AqftDepth;
use crate::qft::{aqft_on, rotation_angle};
use qfab_circuit::{Circuit, Layout, Register};

/// A built QFA circuit together with its register layout.
#[derive(Clone, Debug)]
pub struct QfaCircuit {
    /// The full circuit (QFT · add · QFT⁻¹).
    pub circuit: Circuit,
    /// The addend register `x` (unchanged by the operation).
    pub x: Register,
    /// The target register `y` (receives the sum mod `2^m`).
    pub y: Register,
}

/// Builds the addition step only (phase rotations in the Fourier
/// domain), for a transform already applied to `y`.
///
/// `add_cap = None` keeps every rotation (the paper's configuration);
/// `Some(c)` drops rotations `R_l` with `l > c`.
pub fn qfa_add_step(num_qubits: u32, x: &Register, y: &Register, add_cap: Option<u32>) -> Circuit {
    let n = x.len();
    let m = y.len();
    let mut c = Circuit::new(num_qubits);
    // Mirror Fig. 2's ordering: highest target first.
    for t in (1..=m).rev() {
        for i in (1..=t.min(n)).rev() {
            let l = t - i + 1;
            if add_cap.is_some_and(|cap| l > cap) {
                continue;
            }
            c.cphase(rotation_angle(l), x.qubit(i - 1), y.qubit(t - 1));
        }
    }
    c
}

/// Builds the full QFA: `|x>|y> → |x>|(x+y) mod 2^m>` with an `n`-qubit
/// `x` and `m`-qubit `y`, at AQFT depth `depth`.
pub fn qfa(n: u32, m: u32, depth: AqftDepth) -> QfaCircuit {
    qfa_with_add_cap(n, m, depth, None)
}

/// [`qfa`] with the approximate-addition-step extension.
pub fn qfa_with_add_cap(n: u32, m: u32, depth: AqftDepth, add_cap: Option<u32>) -> QfaCircuit {
    assert!(n >= 1 && m >= 1, "registers must be non-empty");
    let mut layout = Layout::new();
    let x = layout.alloc("x", n);
    let y = layout.alloc("y", m);
    let total = layout.num_qubits();

    let mut circuit = Circuit::new(total);
    circuit.extend(&aqft_on(total, &y, depth));
    circuit.extend(&qfa_add_step(total, &x, &y, add_cap));
    circuit.extend(&aqft_on(total, &y, depth).inverse());
    QfaCircuit { circuit, x, y }
}

/// The subtractor: `|x>|y> → |x>|(y − x) mod 2^m>`, i.e. the exact
/// inverse circuit of [`qfa`].
pub fn qfa_inverse(n: u32, m: u32, depth: AqftDepth) -> QfaCircuit {
    let built = qfa(n, m, depth);
    QfaCircuit {
        circuit: built.circuit.inverse(),
        x: built.x,
        y: built.y,
    }
}

/// A controlled QFA: the whole adder (transform, addition, inverse
/// transform) controlled on one extra qubit, as the paper's cQFA.
///
/// `control` is a global qubit index outside both registers. Gate
/// mapping: H→CH, CP→CCP (the paper's `cH` and `cR_l`).
pub fn cqfa(
    num_qubits: u32,
    control: u32,
    x: &Register,
    y: &Register,
    depth: AqftDepth,
) -> Circuit {
    let mut plain = Circuit::new(num_qubits);
    plain.extend(&aqft_on(num_qubits, y, depth));
    plain.extend(&qfa_add_step(num_qubits, x, y, None));
    plain.extend(&aqft_on(num_qubits, y, depth).inverse());
    plain
        .controlled_by(control)
        .expect("QFA gates (H, CP) are all controllable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_sim::StateVector;

    const TOL: f64 = 1e-9;

    /// Runs the adder on basis inputs and returns the measured (x, y)
    /// register values of the (deterministic) output.
    fn run_add(built: &QfaCircuit, xv: usize, yv: usize) -> (usize, usize) {
        let total = built.x.len() + built.y.len();
        let index = built.y.embed(yv, built.x.embed(xv, 0));
        let mut s = StateVector::basis_state(total, index);
        s.apply_circuit(&built.circuit);
        // Output must be a single basis state.
        let probs = s.probabilities();
        let (best, p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!((p - 1.0).abs() < TOL, "output not deterministic: p={p}");
        (built.x.extract(best), built.y.extract(best))
    }

    #[test]
    fn exhaustive_small_addition() {
        let built = qfa(3, 4, AqftDepth::Full);
        for xv in 0..8 {
            for yv in 0..16 {
                let (xo, yo) = run_add(&built, xv, yv);
                assert_eq!(xo, xv, "x register must be preserved");
                assert_eq!(yo, (xv + yv) % 16, "sum wrong for {xv}+{yv}");
            }
        }
    }

    #[test]
    fn non_modular_when_target_has_headroom() {
        // n-bit inputs, (n+1)-bit target: exact sums, never wrapped.
        let built = qfa(3, 4, AqftDepth::Full);
        for xv in 0..8 {
            for yv in 0..8 {
                let (_, yo) = run_add(&built, xv, yv);
                assert_eq!(yo, xv + yv);
            }
        }
    }

    #[test]
    fn modular_wraparound_with_equal_widths() {
        let built = qfa(3, 3, AqftDepth::Full);
        let (_, yo) = run_add(&built, 5, 6);
        assert_eq!(yo, (5 + 6) % 8);
        let (_, yo) = run_add(&built, 7, 7);
        assert_eq!(yo, 6);
    }

    #[test]
    fn full_depth_aqft_addition_is_exact() {
        // Full-depth AQFT (cap = m−1) is the QFT: addition stays exact.
        let built = qfa(3, 4, AqftDepth::Limited(3));
        for (xv, yv) in [(0, 0), (1, 7), (5, 9), (7, 15)] {
            let (_, yo) = run_add(&built, xv, yv);
            assert_eq!(yo, (xv + yv) % 16);
        }
    }

    #[test]
    fn superposed_addend_adds_in_parallel() {
        // x in (|1> + |2>)/√2, y = |4>: output should be an even mix of
        // |1>|5> and |2>|6> — the parallelism the paper's intro touts.
        let built = qfa(3, 4, AqftDepth::Full);
        let total = 7;
        let amp = qfab_math::complex::c64(std::f64::consts::FRAC_1_SQRT_2, 0.0);
        let e1 = built.y.embed(4, built.x.embed(1, 0));
        let e2 = built.y.embed(4, built.x.embed(2, 0));
        let mut s = StateVector::from_sparse(total, &[(e1, amp), (e2, amp)]);
        s.apply_circuit(&built.circuit);
        let o1 = built.y.embed(5, built.x.embed(1, 0));
        let o2 = built.y.embed(6, built.x.embed(2, 0));
        assert!((s.probability(o1) - 0.5).abs() < TOL);
        assert!((s.probability(o2) - 0.5).abs() < TOL);
    }

    #[test]
    fn subtractor_inverts_adder() {
        let add = qfa(3, 4, AqftDepth::Full);
        let sub = qfa_inverse(3, 4, AqftDepth::Full);
        for (xv, yv) in [(3, 9), (7, 0), (5, 15)] {
            let index = add.y.embed(yv, add.x.embed(xv, 0));
            let mut s = StateVector::basis_state(7, index);
            s.apply_circuit(&add.circuit);
            s.apply_circuit(&sub.circuit);
            assert!((s.probability(index) - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn subtraction_computes_difference() {
        let sub = qfa_inverse(3, 4, AqftDepth::Full);
        // y − x mod 16: 9 − 3 = 6.
        let index = sub.y.embed(9, sub.x.embed(3, 0));
        let mut s = StateVector::basis_state(7, index);
        s.apply_circuit(&sub.circuit);
        let out = sub.y.embed(6, sub.x.embed(3, 0));
        assert!((s.probability(out) - 1.0).abs() < TOL);
        // Underflow wraps: 2 − 5 = −3 ≡ 13 (mod 16).
        let index = sub.y.embed(2, sub.x.embed(5, 0));
        let mut s = StateVector::basis_state(7, index);
        s.apply_circuit(&sub.circuit);
        let out = sub.y.embed(13, sub.x.embed(5, 0));
        assert!((s.probability(out) - 1.0).abs() < TOL);
    }

    #[test]
    fn add_step_rotation_counts_match_fig2() {
        // n = m−1: targets t = 1..n get t rotations, target m gets n.
        for n in 2..=7u32 {
            let m = n + 1;
            let mut layout = Layout::new();
            let x = layout.alloc("x", n);
            let y = layout.alloc("y", m);
            let c = qfa_add_step(layout.num_qubits(), &x, &y, None);
            let expect = (n * (n + 1) / 2 + n) as usize;
            assert_eq!(c.counts().named("cp"), expect, "n={n}");
        }
        // The Table I geometry: x = 7, y = 8 → 35 rotations.
        let mut layout = Layout::new();
        let x = layout.alloc("x", 7);
        let y = layout.alloc("y", 8);
        let c = qfa_add_step(layout.num_qubits(), &x, &y, None);
        assert_eq!(c.counts().named("cp"), 35);
    }

    #[test]
    fn approximate_add_step_drops_deep_rotations() {
        let mut layout = Layout::new();
        let x = layout.alloc("x", 7);
        let y = layout.alloc("y", 8);
        let full = qfa_add_step(layout.num_qubits(), &x, &y, None);
        let capped = qfa_add_step(layout.num_qubits(), &x, &y, Some(3));
        assert!(capped.counts().named("cp") < full.counts().named("cp"));
        // Every remaining rotation angle is ≥ 2π/2³.
        for g in capped.gates() {
            if let Some(theta) = g.angle() {
                assert!(theta >= rotation_angle(3) - 1e-12);
            }
        }
    }

    #[test]
    fn approximate_addition_still_roughly_adds() {
        // With a generous cap the most-significant bits still come out
        // right for typical inputs.
        let built = qfa_with_add_cap(4, 5, AqftDepth::Full, Some(4));
        let index = built.y.embed(3, built.x.embed(9, 0));
        let mut s = StateVector::basis_state(9, index);
        s.apply_circuit(&built.circuit);
        let exact = built.y.embed(12, built.x.embed(9, 0));
        // Not necessarily deterministic, but the exact sum dominates.
        assert!(s.probability(exact) > 0.5);
    }

    #[test]
    fn controlled_qfa_respects_control() {
        let mut layout = Layout::new();
        let ctrl = layout.alloc("c", 1);
        let x = layout.alloc("x", 2);
        let y = layout.alloc("y", 3);
        let total = layout.num_qubits();
        let c = cqfa(total, ctrl.qubit(0), &x, &y, AqftDepth::Full);
        // Control off: nothing happens.
        let idx_off = y.embed(3, x.embed(2, 0));
        let mut s = StateVector::basis_state(total, idx_off);
        s.apply_circuit(&c);
        assert!((s.probability(idx_off) - 1.0).abs() < TOL);
        // Control on: adds.
        let idx_on = ctrl.embed(1, idx_off);
        let mut s = StateVector::basis_state(total, idx_on);
        s.apply_circuit(&c);
        let out = ctrl.embed(1, y.embed(5, x.embed(2, 0)));
        assert!((s.probability(out) - 1.0).abs() < TOL);
    }

    #[test]
    fn cqfa_gate_set_is_controlled() {
        let mut layout = Layout::new();
        let ctrl = layout.alloc("c", 1);
        let x = layout.alloc("x", 2);
        let y = layout.alloc("y", 3);
        let c = cqfa(layout.num_qubits(), ctrl.qubit(0), &x, &y, AqftDepth::Full);
        for g in c.gates() {
            assert!(
                matches!(
                    g,
                    qfab_circuit::Gate::Ch { .. } | qfab_circuit::Gate::Ccphase { .. }
                ),
                "unexpected gate {g} in cQFA"
            );
        }
    }

    #[test]
    fn aqft_depth_changes_transform_but_addition_of_zero_is_identity() {
        // Adding x = 0 must be the identity at any depth (QFT·QFT⁻¹).
        let built = qfa(3, 4, AqftDepth::Limited(1));
        for yv in [0usize, 7, 12, 15] {
            let index = built.y.embed(yv, 0);
            let mut s = StateVector::basis_state(7, index);
            s.apply_circuit(&built.circuit);
            assert!(
                (s.probability(index) - 1.0).abs() < TOL,
                "identity broken at depth 1 for y={yv}"
            );
        }
    }

    #[test]
    fn shallow_depth_leaks_probability_but_keeps_argmax() {
        // On basis-state (order-1) inputs, the depth-1 AQFA is no longer
        // exact -- probability leaks off the correct sum -- but the exact
        // sum stays the most likely outcome. (The paper's observed d=1
        // *failures* arise from superposed operands and finite shots; see
        // the pipeline and integration tests.)
        let built = qfa(3, 4, AqftDepth::Limited(1));
        let mut max_leak = 0.0f64;
        for xv in 0..8 {
            for yv in 0..16 {
                let index = built.y.embed(yv, built.x.embed(xv, 0));
                let mut s = StateVector::basis_state(7, index);
                s.apply_circuit(&built.circuit);
                let exact = built.y.embed((xv + yv) % 16, built.x.embed(xv, 0));
                let p_exact = s.probability(exact);
                let probs = s.probabilities();
                let best = probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
                assert_eq!(best, exact, "argmax moved for {xv}+{yv}");
                max_leak = max_leak.max(1.0 - p_exact);
            }
        }
        assert!(
            max_leak > 1e-3,
            "depth 1 should leak probability somewhere, max leak {max_leak}"
        );
    }
}
