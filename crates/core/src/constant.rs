//! Classical-operand Fourier arithmetic.
//!
//! The paper's §III closing remark: when one operand is a single
//! classical integer, its register disappears and the controlled
//! rotations collapse to plain phase gates whose angles depend on the
//! constant — shorter, shallower circuits that add the constant to
//! every superposed state at once. This module provides that family:
//!
//! * [`add_const`] — `|y> → |(y + a) mod 2^m>` with only 1q phases
//!   between the transforms;
//! * [`sub_const`] — the inverse;
//! * [`controlled_add_const`] — one control qubit (rotations become
//!   CPs), the building block for weighted sums;
//! * [`weighted_sum`] — `|b_1…b_k>|acc> → |b>|acc + Σ w_i b_i>`, the
//!   data-processing/ML primitive the paper's introduction motivates;
//! * [`mul_const_mod`] — shift-add constant multiplication
//!   `|y>|0> → |y>|a·y mod 2^p>`, a step toward the paper's "tensor
//!   extensions" and modular exponentiation.

use crate::depth::AqftDepth;
use crate::qft::aqft_on;
use qfab_circuit::{Circuit, Layout, Register};
use std::f64::consts::PI;

/// Phase-space constant addition on an already-Fourier-transformed
/// register: target qubit `t` (1-based) turns by `2π·(a mod 2^t)/2^t`.
pub fn const_add_phases(num_qubits: u32, y: &Register, a: i64) -> Circuit {
    let m = y.len();
    let mut c = Circuit::new(num_qubits);
    let a_mod = qfab_math::frac::wrap_mod_2n(a, m.min(63));
    for t in 1..=m {
        let frac = (a_mod % (1usize << t)) as f64 / (1usize << t) as f64;
        let theta = 2.0 * PI * frac;
        if theta.abs() > 1e-15 {
            c.phase(theta, y.qubit(t - 1));
        }
    }
    c
}

/// `|y> → |(y + a) mod 2^m>` for a classical constant `a` (may be
/// negative: two's-complement wraparound applies).
pub fn add_const(m: u32, a: i64, depth: AqftDepth) -> Circuit {
    let y = Register::new("y", 0, m);
    let mut c = Circuit::new(m);
    c.extend(&aqft_on(m, &y, depth));
    c.extend(&const_add_phases(m, &y, a));
    c.extend(&aqft_on(m, &y, depth).inverse());
    c
}

/// `|y> → |(y − a) mod 2^m>`.
pub fn sub_const(m: u32, a: i64, depth: AqftDepth) -> Circuit {
    add_const(
        m,
        a.checked_neg().expect("constant negation overflow"),
        depth,
    )
}

/// Constant addition under one control qubit: phases become controlled
/// phases. The accumulator register must already be inside the circuit;
/// the transforms are *not* included (callers batch many controlled
/// additions between one QFT / inverse-QFT pair).
pub fn controlled_const_add_phases(
    num_qubits: u32,
    control: u32,
    acc: &Register,
    a: i64,
) -> Circuit {
    let m = acc.len();
    let mut c = Circuit::new(num_qubits);
    let a_mod = qfab_math::frac::wrap_mod_2n(a, m.min(63));
    for t in 1..=m {
        let frac = (a_mod % (1usize << t)) as f64 / (1usize << t) as f64;
        let theta = 2.0 * PI * frac;
        if theta.abs() > 1e-15 {
            c.cphase(theta, control, acc.qubit(t - 1));
        }
    }
    c
}

/// A full controlled constant adder including the transforms.
pub fn controlled_add_const(
    num_qubits: u32,
    control: u32,
    acc: &Register,
    a: i64,
    depth: AqftDepth,
) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    c.extend(&aqft_on(num_qubits, acc, depth));
    c.extend(&controlled_const_add_phases(num_qubits, control, acc, a));
    c.extend(&aqft_on(num_qubits, acc, depth).inverse());
    c
}

/// A built weighted-sum circuit with its layout.
#[derive(Clone, Debug)]
pub struct WeightedSumCircuit {
    /// The circuit.
    pub circuit: Circuit,
    /// Input bit register (k qubits, preserved).
    pub bits: Register,
    /// Accumulator register.
    pub acc: Register,
}

/// Builds `|b>|acc> → |b>|acc + Σ_i w_i·b_i mod 2^m>`: one QFT, one
/// batch of controlled constant-phase additions (one per input bit),
/// one inverse QFT — the weighted-sum primitive for quantum data
/// processing / inner products.
pub fn weighted_sum(weights: &[i64], m: u32, depth: AqftDepth) -> WeightedSumCircuit {
    assert!(!weights.is_empty(), "need at least one weight");
    let k = u32::try_from(weights.len()).expect("too many weights");
    let mut layout = Layout::new();
    let bits = layout.alloc("b", k);
    let acc = layout.alloc("acc", m);
    let total = layout.num_qubits();

    let mut circuit = Circuit::new(total);
    circuit.extend(&aqft_on(total, &acc, depth));
    for (i, &w) in weights.iter().enumerate() {
        circuit.extend(&controlled_const_add_phases(
            total,
            bits.qubit(i as u32),
            &acc,
            w,
        ));
    }
    circuit.extend(&aqft_on(total, &acc, depth).inverse());
    WeightedSumCircuit { circuit, bits, acc }
}

/// A built constant-multiplier circuit with its layout.
#[derive(Clone, Debug)]
pub struct MulConstCircuit {
    /// The circuit.
    pub circuit: Circuit,
    /// Input register (preserved).
    pub y: Register,
    /// Product register (`p` qubits, receives `a·y mod 2^p`).
    pub z: Register,
}

/// Builds `|y>|0> → |y>|a·y mod 2^p>` by shift-add: for each input bit
/// `y_i`, a controlled constant addition of `a·2^{i−1}` into the
/// product. One QFT/inverse pair brackets all the additions.
pub fn mul_const_mod(m: u32, a: i64, p: u32, depth: AqftDepth) -> MulConstCircuit {
    let mut layout = Layout::new();
    let y = layout.alloc("y", m);
    let z = layout.alloc("z", p);
    let total = layout.num_qubits();

    let mut circuit = Circuit::new(total);
    circuit.extend(&aqft_on(total, &z, depth));
    for i in 0..m {
        let shifted = a.wrapping_mul(1i64 << i);
        circuit.extend(&controlled_const_add_phases(total, y.qubit(i), &z, shifted));
    }
    circuit.extend(&aqft_on(total, &z, depth).inverse());
    MulConstCircuit { circuit, y, z }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_sim::StateVector;

    const TOL: f64 = 1e-9;

    fn deterministic_output(s: &StateVector) -> usize {
        let probs = s.probabilities();
        let (best, p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!((p - 1.0).abs() < TOL, "not deterministic: {p}");
        best
    }

    #[test]
    fn const_addition_exhaustive() {
        let m = 4;
        for a in [0i64, 1, 5, 15] {
            let c = add_const(m, a, AqftDepth::Full);
            for yv in 0..16usize {
                let mut s = StateVector::basis_state(m, yv);
                s.apply_circuit(&c);
                assert_eq!(
                    deterministic_output(&s),
                    (yv + a as usize) % 16,
                    "y={yv}, a={a}"
                );
            }
        }
    }

    #[test]
    fn negative_constants_wrap() {
        let c = add_const(4, -3, AqftDepth::Full);
        let mut s = StateVector::basis_state(4, 1);
        s.apply_circuit(&c);
        assert_eq!(deterministic_output(&s), 14); // 1 − 3 ≡ 14 (mod 16)
    }

    #[test]
    fn sub_const_inverts_add_const() {
        let add = add_const(4, 5, AqftDepth::Full);
        let sub = sub_const(4, 5, AqftDepth::Full);
        let mut s = StateVector::basis_state(4, 9);
        s.apply_circuit(&add);
        s.apply_circuit(&sub);
        assert_eq!(deterministic_output(&s), 9);
    }

    #[test]
    fn const_adder_uses_no_multiqubit_gates() {
        let c = add_const(6, 13, AqftDepth::Full);
        // Only the transforms contribute 2q gates; the addition itself
        // is pure 1q phases — the dynamic-circuit advantage the paper
        // describes.
        let add_only = const_add_phases(6, &Register::new("y", 0, 6), 13);
        assert_eq!(add_only.counts().two_qubit, 0);
        assert!(add_only.counts().one_qubit > 0);
        assert!(c.counts().two_qubit > 0); // from the QFTs
    }

    #[test]
    fn const_addition_acts_on_superpositions_in_parallel() {
        let c = add_const(4, 3, AqftDepth::Full);
        let amp = qfab_math::complex::c64(0.5, 0.0);
        let entries: Vec<(usize, qfab_math::Complex64)> =
            [0usize, 4, 8, 12].iter().map(|&i| (i, amp)).collect();
        let mut s = StateVector::from_sparse(4, &entries);
        s.apply_circuit(&c);
        for &i in &[3usize, 7, 11, 15] {
            assert!((s.probability(i) - 0.25).abs() < TOL);
        }
    }

    #[test]
    fn controlled_add_const_respects_control() {
        let mut layout = Layout::new();
        let ctrl = layout.alloc("c", 1);
        let acc = layout.alloc("acc", 4);
        let total = layout.num_qubits();
        let c = controlled_add_const(total, ctrl.qubit(0), &acc, 6, AqftDepth::Full);
        // Off.
        let idx = acc.embed(3, 0);
        let mut s = StateVector::basis_state(total, idx);
        s.apply_circuit(&c);
        assert_eq!(deterministic_output(&s), idx);
        // On.
        let idx_on = ctrl.embed(1, acc.embed(3, 0));
        let mut s = StateVector::basis_state(total, idx_on);
        s.apply_circuit(&c);
        assert_eq!(deterministic_output(&s), ctrl.embed(1, acc.embed(9, 0)));
    }

    #[test]
    fn weighted_sum_small_cases() {
        let ws = weighted_sum(&[3, 5, -2], 5, AqftDepth::Full);
        let total = 8;
        for bits in 0..8usize {
            let idx = ws.bits.embed(bits, 0);
            let mut s = StateVector::basis_state(total, idx);
            s.apply_circuit(&ws.circuit);
            let mut expect = 0i64;
            for (i, &w) in [3i64, 5, -2].iter().enumerate() {
                if bits >> i & 1 == 1 {
                    expect += w;
                }
            }
            let expect = qfab_math::frac::wrap_mod_2n(expect, 5);
            assert_eq!(
                deterministic_output(&s),
                ws.acc.embed(expect, ws.bits.embed(bits, 0)),
                "bits {bits:03b}"
            );
        }
    }

    #[test]
    fn weighted_sum_on_superposed_inputs() {
        // b in uniform superposition: every weighted sum appears with
        // equal probability — the paper's "many operations in parallel".
        let ws = weighted_sum(&[1, 2], 3, AqftDepth::Full);
        let total = 5;
        let amp = qfab_math::complex::c64(0.5, 0.0);
        let entries: Vec<(usize, qfab_math::Complex64)> =
            (0..4usize).map(|b| (ws.bits.embed(b, 0), amp)).collect();
        let mut s = StateVector::from_sparse(total, &entries);
        s.apply_circuit(&ws.circuit);
        for b in 0..4usize {
            let sum = (b & 1) + 2 * (b >> 1);
            let out = ws.acc.embed(sum, ws.bits.embed(b, 0));
            assert!((s.probability(out) - 0.25).abs() < TOL, "b={b}");
        }
    }

    #[test]
    fn mul_const_exhaustive() {
        let built = mul_const_mod(3, 5, 6, AqftDepth::Full);
        let total = 9;
        for yv in 0..8usize {
            let idx = built.y.embed(yv, 0);
            let mut s = StateVector::basis_state(total, idx);
            s.apply_circuit(&built.circuit);
            let out = built.z.embed((5 * yv) % 64, built.y.embed(yv, 0));
            assert_eq!(deterministic_output(&s), out, "5·{yv}");
        }
    }

    #[test]
    fn mul_const_modular_reduction() {
        // Product register narrower than the full product: mod 2^p.
        let built = mul_const_mod(3, 7, 4, AqftDepth::Full);
        let total = 7;
        let idx = built.y.embed(6, 0);
        let mut s = StateVector::basis_state(total, idx);
        s.apply_circuit(&built.circuit);
        // 7·6 = 42 ≡ 10 (mod 16).
        let out = built.z.embed(10, built.y.embed(6, 0));
        assert_eq!(deterministic_output(&s), out);
    }

    #[test]
    fn repeated_mul_const_builds_modular_exponentiation() {
        // a^2 · y by two sequential multipliers staged through registers
        // is covered in the examples; here verify a·(a·y) ≡ a²·y mod 2^p
        // using two circuits and manual register plumbing.
        let a = 3i64;
        let p = 5u32;
        let first = mul_const_mod(3, a, p, AqftDepth::Full);
        let yv = 6usize;
        let mut s = StateVector::basis_state(8, first.y.embed(yv, 0));
        s.apply_circuit(&first.circuit);
        let mid = first.z.embed((a as usize * yv) % 32, first.y.embed(yv, 0));
        assert_eq!(deterministic_output(&s), mid);
    }
}
