//! Single-transform Fourier multiplication, unsigned and **signed** —
//! the "signed QFM" extension the paper's conclusion calls for.
//!
//! Instead of `n` controlled QFAs (each with its own transform pair,
//! as in [`crate::multiplier::qfm`]), this construction performs **one**
//! QFT over the product register, applies every partial-product phase
//! `x_i · y_j · 2^{i+j−2}` directly as a doubly-controlled rotation,
//! and transforms back:
//!
//! ```text
//! |x>|y> QFT(z) ·  Π_{i,j,t} ccR(±2π·2^{i+j−2}/2^t)  · QFT⁻¹(z)
//! ```
//!
//! Because the phase arithmetic is mod `2^{n+m}`, **negative weights
//! wrap to two's complement for free**: interpreting the sign bits of
//! `x` and `y` with weight `−2^{n−1}` / `−2^{m−1}` (i.e. flipping the
//! sign of every partial product involving a sign bit) yields the
//! signed product directly — no sign-extension registers, no
//! Baugh–Wooley correction rows.
//!
//! The same depth cap as the AQFT applies: a rotation with denominator
//! `2^l` (where `l = t − (i+j−2)`) is dropped when `l > cap`, giving an
//! approximate multiplier whose cost/fidelity trade-off mirrors the
//! paper's study.

use crate::depth::AqftDepth;
use crate::qft::{aqft_on, rotation_angle};
use qfab_circuit::{Circuit, Layout, Register};

/// Signedness of the multiplier's operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Signedness {
    /// Operands are unsigned integers.
    Unsigned,
    /// Operands are two's-complement signed integers.
    Signed,
}

/// A built single-transform multiplier with its register layout.
#[derive(Clone, Debug)]
pub struct FourierMulCircuit {
    /// The full circuit.
    pub circuit: Circuit,
    /// First multiplicand (n qubits, preserved).
    pub x: Register,
    /// Second multiplicand (m qubits, preserved).
    pub y: Register,
    /// Product register (n+m qubits, starts at `|0…0>`; holds the
    /// product mod `2^{n+m}`, two's complement when signed).
    pub z: Register,
}

/// Builds the single-transform multiplier
/// `|x>|y>|0> → |x>|y>|x·y mod 2^{n+m}>` (two's-complement product for
/// [`Signedness::Signed`]). `depth` caps both the product-register
/// (A)QFT and the partial-product rotations.
pub fn qfm_single_transform(
    n: u32,
    m: u32,
    signedness: Signedness,
    depth: AqftDepth,
) -> FourierMulCircuit {
    assert!(n >= 1 && m >= 1, "registers must be non-empty");
    let mut layout = Layout::new();
    let x = layout.alloc("x", n);
    let y = layout.alloc("y", m);
    let z = layout.alloc("z", n + m);
    let total = layout.num_qubits();
    let p = n + m;
    let cap = depth.cap(p);

    let mut circuit = Circuit::new(total);
    circuit.extend(&aqft_on(total, &z, depth));
    // Partial products: bit i of x (1-based) times bit j of y carries
    // weight ±2^{i+j−2}; on Fourier-space qubit t (phase denominator
    // 2^t) that is a rotation R_l with l = t − (i+j−2), kept for
    // 1 ≤ l ≤ cap+1 (mirroring the AQFT's per-qubit rotation budget).
    for i in 1..=n {
        for j in 1..=m {
            let negative = match signedness {
                Signedness::Unsigned => false,
                // Exactly one sign bit in the pair flips the weight;
                // both sign bits together flip it back.
                Signedness::Signed => (i == n) ^ (j == m),
            };
            let shift = i + j - 2;
            for t in (shift + 1)..=p {
                let l = t - shift;
                if l > cap + 1 {
                    continue;
                }
                let theta = if negative {
                    -rotation_angle(l)
                } else {
                    rotation_angle(l)
                };
                circuit.ccphase(theta, x.qubit(i - 1), y.qubit(j - 1), z.qubit(t - 1));
            }
        }
    }
    circuit.extend(&aqft_on(total, &z, depth).inverse());
    FourierMulCircuit { circuit, x, y, z }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::qfm;
    use qfab_math::frac::{decode_twos_complement, encode_twos_complement};
    use qfab_sim::StateVector;

    const TOL: f64 = 1e-9;

    fn run(built: &FourierMulCircuit, xv: usize, yv: usize) -> usize {
        let total = built.x.len() + built.y.len() + built.z.len();
        let input = built.y.embed(yv, built.x.embed(xv, 0));
        let mut s = StateVector::basis_state(total, input);
        s.apply_circuit(&built.circuit);
        let probs = s.probabilities();
        let (best, p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!((p - 1.0).abs() < TOL, "not deterministic: {p}");
        assert_eq!(built.x.extract(best), xv);
        assert_eq!(built.y.extract(best), yv);
        built.z.extract(best)
    }

    #[test]
    fn unsigned_exhaustive_3x3() {
        let built = qfm_single_transform(3, 3, Signedness::Unsigned, AqftDepth::Full);
        for xv in 0..8 {
            for yv in 0..8 {
                assert_eq!(run(&built, xv, yv), xv * yv, "{xv}·{yv}");
            }
        }
    }

    #[test]
    fn unsigned_matches_slice_qfm() {
        let single = qfm_single_transform(2, 3, Signedness::Unsigned, AqftDepth::Full);
        let sliced = qfm(2, 3, AqftDepth::Full);
        for xv in 0..4 {
            for yv in 0..8 {
                let a = run(&single, xv, yv);
                // Slice QFM measured the same way.
                let input = sliced.y.embed(yv, sliced.x.embed(xv, 0));
                let mut s = StateVector::basis_state(10, input);
                s.apply_circuit(&sliced.circuit);
                let out = sliced
                    .z
                    .embed(xv * yv, sliced.y.embed(yv, sliced.x.embed(xv, 0)));
                assert!((s.probability(out) - 1.0).abs() < TOL);
                assert_eq!(a, xv * yv);
            }
        }
    }

    #[test]
    fn signed_exhaustive_3x3() {
        // Every pair of signed 3-bit operands: x, y ∈ [−4, 3].
        let built = qfm_single_transform(3, 3, Signedness::Signed, AqftDepth::Full);
        for xs in -4i64..=3 {
            for ys in -4i64..=3 {
                let xv = encode_twos_complement(xs, 3).unwrap();
                let yv = encode_twos_complement(ys, 3).unwrap();
                let zv = run(&built, xv, yv);
                let got = decode_twos_complement(zv, 6);
                assert_eq!(got, xs * ys, "{xs}·{ys} gave {got}");
            }
        }
    }

    #[test]
    fn signed_asymmetric_widths() {
        let built = qfm_single_transform(2, 4, Signedness::Signed, AqftDepth::Full);
        for xs in -2i64..=1 {
            for ys in [-8i64, -3, 0, 5, 7] {
                let xv = encode_twos_complement(xs, 2).unwrap();
                let yv = encode_twos_complement(ys, 4).unwrap();
                let zv = run(&built, xv, yv);
                assert_eq!(decode_twos_complement(zv, 6), xs * ys, "{xs}·{ys}");
            }
        }
    }

    #[test]
    fn signed_and_unsigned_agree_on_nonnegative_inputs() {
        let s = qfm_single_transform(3, 3, Signedness::Signed, AqftDepth::Full);
        let u = qfm_single_transform(3, 3, Signedness::Unsigned, AqftDepth::Full);
        // Non-negative two's-complement values: sign bits clear.
        for xv in 0..4usize {
            for yv in 0..4usize {
                assert_eq!(run(&s, xv, yv), run(&u, xv, yv));
            }
        }
    }

    #[test]
    fn single_transform_uses_fewer_transforms_more_rotations() {
        // Structural comparison with the slice construction: one QFT
        // pair total (no cH at all), but O(n·m·(n+m)) ccphase gates.
        let single = qfm_single_transform(4, 4, Signedness::Unsigned, AqftDepth::Full);
        let sliced = qfm(4, 4, AqftDepth::Full);
        let sc = single.circuit.counts();
        let lc = sliced.circuit.counts();
        assert_eq!(sc.named("ch"), 0);
        assert_eq!(sc.named("h"), 16); // one QFT + inverse over 8 qubits
        assert!(lc.named("ch") > 0);
        assert!(sc.named("ccp") > 0);
    }

    #[test]
    fn depth_cap_prunes_rotations() {
        let full = qfm_single_transform(3, 3, Signedness::Unsigned, AqftDepth::Full);
        let capped = qfm_single_transform(3, 3, Signedness::Unsigned, AqftDepth::Limited(2));
        assert!(capped.circuit.counts().named("ccp") < full.circuit.counts().named("ccp"));
        // Multiplying by zero is exact at any depth.
        assert_eq!(run(&capped, 0, 5), 0);
    }

    #[test]
    fn capped_multiplier_keeps_argmax_on_most_inputs() {
        let built = qfm_single_transform(3, 3, Signedness::Unsigned, AqftDepth::Limited(3));
        let mut wrong = 0;
        for xv in 0..8 {
            for yv in 0..8 {
                let total = 12;
                let input = built.y.embed(yv, built.x.embed(xv, 0));
                let mut s = StateVector::basis_state(total, input);
                s.apply_circuit(&built.circuit);
                let exact = built
                    .z
                    .embed(xv * yv, built.y.embed(yv, built.x.embed(xv, 0)));
                let probs = s.probabilities();
                let best = probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
                if best != exact {
                    wrong += 1;
                }
            }
        }
        assert!(
            wrong <= 16,
            "cap 3 should keep most products right, {wrong}/64 wrong"
        );
    }

    #[test]
    fn superposed_signed_inputs_multiply_in_parallel() {
        let built = qfm_single_transform(3, 3, Signedness::Signed, AqftDepth::Full);
        let amp = qfab_math::complex::c64(std::f64::consts::FRAC_1_SQRT_2, 0.0);
        let x_neg2 = encode_twos_complement(-2, 3).unwrap();
        let x_pos3 = encode_twos_complement(3, 3).unwrap();
        let yv = encode_twos_complement(-3, 3).unwrap();
        let entries = [
            (built.y.embed(yv, built.x.embed(x_neg2, 0)), amp),
            (built.y.embed(yv, built.x.embed(x_pos3, 0)), amp),
        ];
        let mut s = StateVector::from_sparse(12, &entries);
        s.apply_circuit(&built.circuit);
        // −2·−3 = 6 and 3·−3 = −9, in 6-bit two's complement.
        let o1 = built.z.embed(
            encode_twos_complement(6, 6).unwrap(),
            built.y.embed(yv, built.x.embed(x_neg2, 0)),
        );
        let o2 = built.z.embed(
            encode_twos_complement(-9, 6).unwrap(),
            built.y.embed(yv, built.x.embed(x_pos3, 0)),
        );
        assert!((s.probability(o1) - 0.5).abs() < TOL);
        assert!((s.probability(o2) - 0.5).abs() < TOL);
    }
}
