//! The AQFT approximation depth.
//!
//! The paper's `d` caps the number of conditional rotation gates applied
//! to each qubit of the (A)QFT: qubit `q` (1-based) receives rotations
//! `R_2 … R_{min(q, d+1)}`, so a cap of `m − 1` on an `m`-qubit register
//! keeps every gate — the full QFT. The paper reports that full setting
//! by the label `m − 1` for the QFA (e.g. `d = 7` for its 8-qubit
//! transform) and by `n − 1` for the QFM's 5-qubit controlled transform
//! (labelled `3`); [`AqftDepth::Full`] captures "no gate removed"
//! unambiguously, and [`AqftDepth::paper_label`] renders the paper's
//! column headings.

use std::fmt;

/// Approximation depth of the AQFT.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AqftDepth {
    /// The full QFT: no conditional rotation removed.
    Full,
    /// At most `d ≥ 1` conditional rotations per qubit.
    Limited(u32),
}

impl AqftDepth {
    /// The per-qubit rotation cap effective on an `m`-qubit register.
    pub fn cap(self, m: u32) -> u32 {
        match self {
            AqftDepth::Full => m.saturating_sub(1),
            AqftDepth::Limited(d) => {
                assert!(d >= 1, "approximation depth must be at least 1");
                d.min(m.saturating_sub(1))
            }
        }
    }

    /// True when this depth keeps every rotation of an `m`-qubit QFT.
    pub fn is_full_for(self, m: u32) -> bool {
        self.cap(m) >= m.saturating_sub(1)
    }

    /// The label the paper's figures use: the numeric depth, or `full`.
    pub fn paper_label(self) -> String {
        match self {
            AqftDepth::Full => "full".to_string(),
            AqftDepth::Limited(d) => d.to_string(),
        }
    }

    /// Number of conditional-rotation gates in an `m`-qubit AQFT at this
    /// depth: `Σ_{q=1}^{m} min(q−1, cap)` — the paper's `(2n−d)(d−1)/2`
    /// accounting specialized to the per-qubit-cap convention.
    pub fn rotation_count(self, m: u32) -> usize {
        let cap = self.cap(m);
        (1..=m).map(|q| (q - 1).min(cap) as usize).sum()
    }

    /// The depth `log2 m` rounded to nearest — the Barenco et al.
    /// heuristic optimum the paper evaluates against.
    pub fn barenco_heuristic(m: u32) -> AqftDepth {
        AqftDepth::Limited(((m as f64).log2().round() as u32).max(1))
    }
}

impl fmt::Display for AqftDepth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.paper_label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_semantics() {
        assert_eq!(AqftDepth::Full.cap(8), 7);
        assert_eq!(AqftDepth::Limited(3).cap(8), 3);
        // Caps larger than m−1 saturate: they are already "full".
        assert_eq!(AqftDepth::Limited(100).cap(8), 7);
        assert_eq!(AqftDepth::Full.cap(1), 0);
    }

    #[test]
    fn fullness_detection() {
        assert!(AqftDepth::Full.is_full_for(8));
        assert!(AqftDepth::Limited(7).is_full_for(8));
        assert!(!AqftDepth::Limited(6).is_full_for(8));
        assert!(AqftDepth::Limited(4).is_full_for(5));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_rejected() {
        let _ = AqftDepth::Limited(0).cap(8);
    }

    #[test]
    fn rotation_counts_match_paper_table() {
        // The paper's QFA transform runs on 8 qubits:
        // d=1 → 7, d=2 → 13, d=3 → 18, d=4 → 22, full → 28.
        assert_eq!(AqftDepth::Limited(1).rotation_count(8), 7);
        assert_eq!(AqftDepth::Limited(2).rotation_count(8), 13);
        assert_eq!(AqftDepth::Limited(3).rotation_count(8), 18);
        assert_eq!(AqftDepth::Limited(4).rotation_count(8), 22);
        assert_eq!(AqftDepth::Full.rotation_count(8), 28);
        // The QFM's controlled transform runs on 5 qubits:
        // d=1 → 4, d=2 → 7, full → 10.
        assert_eq!(AqftDepth::Limited(1).rotation_count(5), 4);
        assert_eq!(AqftDepth::Limited(2).rotation_count(5), 7);
        assert_eq!(AqftDepth::Full.rotation_count(5), 10);
    }

    #[test]
    fn labels() {
        assert_eq!(AqftDepth::Full.paper_label(), "full");
        assert_eq!(AqftDepth::Limited(3).paper_label(), "3");
        assert_eq!(format!("{}", AqftDepth::Full), "full");
    }

    #[test]
    fn barenco_heuristic_values() {
        assert_eq!(AqftDepth::barenco_heuristic(8), AqftDepth::Limited(3));
        assert_eq!(AqftDepth::barenco_heuristic(16), AqftDepth::Limited(4));
        assert_eq!(AqftDepth::barenco_heuristic(2), AqftDepth::Limited(1));
    }
}
