//! State-preparation circuit synthesis (Shende/Möttönen style).
//!
//! The paper initializes operand qintegers "using the reverse
//! decomposition algorithm of Shende et al. implemented in Qiskit" —
//! and then excludes initialization from the noise model, which is why
//! the evaluation pipeline injects amplitudes directly. This module
//! provides the real circuit construction for completeness and for
//! callers who *do* want to pay (or noise-model) state preparation:
//!
//! * [`disentangle`] — a circuit mapping an arbitrary `|ψ>` to
//!   `e^{iφ}|0…0>` by disentangling one qubit at a time with
//!   uniformly-controlled RZ/RY multiplexors (the "reverse
//!   decomposition");
//! * [`initialize`] — its inverse: prepares `|ψ>` from `|0…0>` up to
//!   global phase;
//! * [`ucrot`] — the uniformly-controlled rotation lowering
//!   (2^k rotations + 2^k CX per multiplexor, via the standard
//!   angle-halving recursion).
//!
//! Gate cost is Θ(2^n) CX for a dense n-qubit state — the generic
//! lower bound — while sparse states (few nonzero amplitudes grouped
//! under shared prefixes) come out much cheaper because zero-angle
//! rotations are pruned during emission.

use qfab_circuit::Circuit;
use qfab_math::complex::Complex64;

const ANGLE_TOL: f64 = 1e-12;

/// Which rotation axis a multiplexor applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RotAxis {
    Y,
    Z,
}

/// Emits a uniformly-controlled rotation: for each classical pattern of
/// the `controls` (listed LSB-first), rotate `target` by the matching
/// entry of `angles` (length `2^controls.len()`).
///
/// Uses the angle-halving recursion: `UC(θ) = UC'(θ₊)·CX·UC'(θ₋)·CX`
/// with `θ± = (θ_left ± θ_right)/2`, which costs one rotation and one
/// CX per angle. All-zero multiplexors emit nothing.
pub fn ucrot(
    circuit: &mut Circuit,
    angles: &[f64],
    controls: &[u32],
    target: u32,
    axis: RotAxisPublic,
) {
    let axis = match axis {
        RotAxisPublic::Y => RotAxis::Y,
        RotAxisPublic::Z => RotAxis::Z,
    };
    assert_eq!(
        angles.len(),
        1usize << controls.len(),
        "need one angle per control pattern"
    );
    emit_ucrot(circuit, angles, controls, target, axis);
}

/// Public axis selector for [`ucrot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RotAxisPublic {
    /// RY multiplexor.
    Y,
    /// RZ multiplexor.
    Z,
}

fn emit_ucrot(circuit: &mut Circuit, angles: &[f64], controls: &[u32], target: u32, axis: RotAxis) {
    if angles.iter().all(|a| a.abs() <= ANGLE_TOL) {
        return;
    }
    if controls.is_empty() {
        push_rot(circuit, angles[0], target, axis);
        return;
    }
    // Split on the most significant control (last in the list): the
    // first half of `angles` is its |0> branch, the second its |1>.
    let (c_top, rest) = controls.split_last().expect("non-empty controls");
    let half = angles.len() / 2;
    let plus: Vec<f64> = (0..half)
        .map(|i| (angles[i] + angles[i + half]) / 2.0)
        .collect();
    let minus: Vec<f64> = (0..half)
        .map(|i| (angles[i] - angles[i + half]) / 2.0)
        .collect();
    emit_ucrot(circuit, &plus, rest, target, axis);
    // The CX flips the sign of subsequent rotations when the control is
    // |1>, turning (plus, minus) into per-branch angles.
    if minus.iter().any(|a| a.abs() > ANGLE_TOL) {
        circuit.cx(*c_top, target);
        emit_ucrot(circuit, &minus, rest, target, axis);
        circuit.cx(*c_top, target);
    }
}

fn push_rot(circuit: &mut Circuit, angle: f64, target: u32, axis: RotAxis) {
    if angle.abs() <= ANGLE_TOL {
        return;
    }
    match axis {
        RotAxis::Y => {
            circuit.ry(angle, target);
        }
        RotAxis::Z => {
            circuit.rz(angle, target);
        }
    }
}

/// Builds a circuit mapping the given state to `e^{iφ}|0…0>` — the
/// reverse decomposition. `amplitudes` must have length `2^n` for some
/// `n ≥ 1` and nonzero norm (it is normalized internally).
pub fn disentangle(amplitudes: &[Complex64]) -> Circuit {
    let n = amplitudes.len().trailing_zeros();
    assert!(
        amplitudes.len().is_power_of_two() && n >= 1,
        "amplitude vector length must be a power of two ≥ 2"
    );
    let norm: f64 = amplitudes.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    assert!(norm > 1e-12, "state has zero norm");
    let mut amps: Vec<Complex64> = amplitudes.iter().map(|a| a.scale(1.0 / norm)).collect();

    let mut circuit = Circuit::new(n);
    // Disentangle the LSB first: after each round the live state lives
    // on the remaining higher qubits (array shrinks by half).
    for q in 0..n {
        let patterns = amps.len() / 2;
        let controls: Vec<u32> = (q + 1..n).collect();
        let mut rz_angles = Vec::with_capacity(patterns);
        let mut ry_angles = Vec::with_capacity(patterns);
        let mut next = Vec::with_capacity(patterns);
        for y in 0..patterns {
            let a0 = amps[2 * y];
            let a1 = amps[2 * y + 1];
            let (r0, r1) = (a0.norm(), a1.norm());
            // RZ(β) makes the pair phases equal (β = arg a0 − arg a1);
            // zero when either component vanishes.
            let beta = if r0 > ANGLE_TOL && r1 > ANGLE_TOL {
                a0.arg() - a1.arg()
            } else {
                0.0
            };
            // RY(γ) then zeroes the |1> component.
            let gamma = -2.0 * r1.atan2(r0);
            rz_angles.push(beta);
            ry_angles.push(gamma);
            // Residual amplitude for the shrunken state: magnitude r
            // with the pair's mean phase (or the surviving component's
            // phase when one side is zero).
            let r = (r0 * r0 + r1 * r1).sqrt();
            let phase = if r0 > ANGLE_TOL && r1 > ANGLE_TOL {
                (a0.arg() + a1.arg()) / 2.0
            } else if r1 > r0 {
                a1.arg()
            } else {
                a0.arg()
            };
            next.push(Complex64::from_polar(r, phase));
        }
        // Don't-care optimization: patterns with no amplitude never
        // execute their branch, so their angles are free. When every
        // *live* pattern agrees, filling the dead ones with the same
        // value collapses the whole multiplexor to one uncontrolled
        // rotation (this is what makes basis-state and uniform-sparse
        // preparation cheap).
        let live: Vec<bool> = (0..patterns)
            .map(|y| amps[2 * y].norm() + amps[2 * y + 1].norm() > ANGLE_TOL)
            .collect();
        fill_dont_cares(&mut rz_angles, &live);
        fill_dont_cares(&mut ry_angles, &live);
        emit_ucrot(&mut circuit, &rz_angles, &controls, q, RotAxis::Z);
        emit_ucrot(&mut circuit, &ry_angles, &controls, q, RotAxis::Y);
        amps = next;
    }
    circuit
}

/// If every live pattern's angle agrees (within tolerance), overwrite
/// the dead patterns with that shared value so the multiplexor
/// degenerates to a single rotation.
fn fill_dont_cares(angles: &mut [f64], live: &[bool]) {
    let mut shared: Option<f64> = None;
    for (a, &l) in angles.iter().zip(live) {
        if l {
            match shared {
                None => shared = Some(*a),
                Some(s) if (s - *a).abs() <= 1e-9 => {}
                Some(_) => return, // live angles disagree: leave as-is
            }
        }
    }
    if let Some(s) = shared {
        angles.fill(s);
    }
}

/// Builds a circuit preparing the given state from `|0…0>`, up to a
/// global phase — the forward Shende-style initializer.
pub fn initialize(amplitudes: &[Complex64]) -> Circuit {
    disentangle(amplitudes).inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_circuit::Gate;
    use qfab_math::approx::states_equal_up_to_phase;
    use qfab_math::complex::c64;
    use qfab_math::rng::Xoshiro256StarStar;
    use qfab_sim::StateVector;

    fn check_prepares(amplitudes: &[Complex64]) {
        let n = amplitudes.len().trailing_zeros();
        let norm: f64 = amplitudes.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        let target: Vec<Complex64> = amplitudes.iter().map(|a| a.scale(1.0 / norm)).collect();
        let circuit = initialize(amplitudes);
        let mut s = StateVector::zero_state(n);
        s.apply_circuit(&circuit);
        assert!(
            states_equal_up_to_phase(s.amplitudes(), &target, 1e-8),
            "initializer failed for {n}-qubit state"
        );
    }

    #[test]
    fn prepares_single_qubit_states() {
        check_prepares(&[c64(1.0, 0.0), c64(0.0, 0.0)]);
        check_prepares(&[c64(0.0, 0.0), c64(1.0, 0.0)]);
        check_prepares(&[c64(0.6, 0.0), c64(0.0, 0.8)]);
        check_prepares(&[c64(0.5, 0.5), c64(-0.5, 0.5)]);
    }

    #[test]
    fn prepares_every_basis_state() {
        for n in 1..=4u32 {
            for idx in 0..(1usize << n) {
                let mut amps = vec![Complex64::ZERO; 1 << n];
                amps[idx] = Complex64::ONE;
                check_prepares(&amps);
            }
        }
    }

    #[test]
    fn basis_state_circuits_are_cheap() {
        // A basis state needs only uncontrolled flips: the zero-angle
        // pruning must keep the circuit small (no 2^n blowup).
        let mut amps = vec![Complex64::ZERO; 32];
        amps[0b10110] = Complex64::ONE;
        let c = initialize(&amps);
        assert!(
            c.counts().two_qubit <= 8,
            "basis-state prep should be nearly CX-free, got {}",
            c.counts()
        );
    }

    #[test]
    fn prepares_uniform_superpositions() {
        for n in 1..=5u32 {
            let dim = 1usize << n;
            let amp = Complex64::from_real(1.0 / (dim as f64).sqrt());
            check_prepares(&vec![amp; dim]);
        }
    }

    #[test]
    fn prepares_qinteger_style_sparse_states() {
        // Order-2 qinteger on 6 qubits, like the paper's operands.
        let mut amps = vec![Complex64::ZERO; 64];
        amps[19] = Complex64::from_real(std::f64::consts::FRAC_1_SQRT_2);
        amps[44] = Complex64::from_real(std::f64::consts::FRAC_1_SQRT_2);
        check_prepares(&amps);
    }

    #[test]
    fn prepares_random_dense_states() {
        let mut rng = Xoshiro256StarStar::new(31);
        for n in 1..=6u32 {
            let dim = 1usize << n;
            let amps: Vec<Complex64> = (0..dim)
                .map(|_| c64(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
                .collect();
            check_prepares(&amps);
        }
    }

    #[test]
    fn disentangle_then_measure_zero() {
        let mut rng = Xoshiro256StarStar::new(7);
        let dim = 16;
        let amps: Vec<Complex64> = (0..dim)
            .map(|_| c64(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        let normalized: Vec<Complex64> = amps.iter().map(|a| a.scale(1.0 / norm)).collect();
        let circuit = disentangle(&amps);
        let mut s = StateVector::from_amplitudes(4, normalized);
        s.apply_circuit(&circuit);
        assert!(
            (s.probability(0) - 1.0).abs() < 1e-8,
            "disentangle left P(0) = {}",
            s.probability(0)
        );
    }

    #[test]
    fn initializer_matches_direct_injection_for_instances() {
        // The pipeline's direct amplitude injection and the synthesized
        // circuit agree — the substitution DESIGN.md §3 relies on.
        use crate::ops::AddInstance;
        let mut rng = Xoshiro256StarStar::new(5);
        let inst = AddInstance::random(3, 4, 2, 2, &mut rng);
        let injected = inst.initial_state();
        let mut amps = vec![Complex64::ZERO; 1 << 7];
        for (idx, amp) in inst.initial_entries() {
            amps[idx] = amp;
        }
        let mut synthesized = StateVector::zero_state(7);
        synthesized.apply_circuit(&initialize(&amps));
        assert!(states_equal_up_to_phase(
            injected.amplitudes(),
            synthesized.amplitudes(),
            1e-8
        ));
    }

    #[test]
    fn ucrot_uniform_angle_equals_plain_rotation() {
        // All-equal angles: the multiplexor degenerates to a single
        // uncontrolled rotation (all difference terms vanish).
        let mut c = Circuit::new(3);
        ucrot(&mut c, &[0.7; 4], &[1, 2], 0, RotAxisPublic::Y);
        assert_eq!(c.len(), 1);
        assert_eq!(c.gates()[0], Gate::Ry(0, 0.7));
    }

    #[test]
    fn ucrot_branching_angles() {
        // angles[pattern]: rotate only when control = 1.
        let mut c = Circuit::new(2);
        ucrot(&mut c, &[0.0, 1.0], &[1], 0, RotAxisPublic::Y);
        // Check semantics by simulation: control |0> leaves target at
        // |0>, control |1> rotates by 1.0.
        let mut s0 = StateVector::basis_state(2, 0b00);
        s0.apply_circuit(&c);
        assert!((s0.probability(0b00) - 1.0).abs() < 1e-10);
        let mut s1 = StateVector::basis_state(2, 0b10);
        s1.apply_circuit(&c);
        let expect_p1 = (0.5f64).sin().powi(2); // sin²(θ/2)
        assert!((s1.probability(0b11) - expect_p1).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_lengths() {
        let _ = initialize(&[Complex64::ONE; 3]);
    }

    #[test]
    #[should_panic(expected = "zero norm")]
    fn rejects_zero_state() {
        let _ = initialize(&[Complex64::ZERO; 4]);
    }
}
