//! The paper's success metric and error-bar statistic (§IV).
//!
//! Per instance: tabulate the shot counts, then the instance is
//! *successful* iff no incorrect output has more counts than any one of
//! the correct outputs. The recorded statistic is the **minimum gap**
//! `min_correct_count − max_incorrect_count` (positive for comfortable
//! successes, negative for failures).
//!
//! Per ensemble (one plotted point): the success rate in percent, and
//! error bars built from the standard deviation σ of the per-instance
//! minimum gaps: the lower bar is the fraction of *successful* instances
//! whose gap is within σ of failure, the upper bar the fraction of
//! *failed* instances within σ of success.

use qfab_math::stats::{wilson_interval, Welford};
use qfab_sim::Counts;

/// Standard normal quantile for the 95% Wilson interval (z₀.₉₇₅).
const WILSON_Z95: f64 = 1.959_963_985;

/// The outcome of one arithmetic instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstanceOutcome {
    /// Whether every correct output out-counted every incorrect one.
    pub success: bool,
    /// `min(correct counts) − max(incorrect counts)`.
    pub min_gap: i64,
}

/// Evaluates the paper's success criterion for one instance.
///
/// `expected` must be non-empty and deduplicated (as produced by
/// [`crate::ops::AddInstance::expected_outputs`]).
pub fn evaluate_instance(counts: &Counts, expected: &[usize]) -> InstanceOutcome {
    assert!(!expected.is_empty(), "need at least one expected output");
    let min_correct = counts.min_count_among(expected.iter().copied()) as i64;
    let max_incorrect = counts
        .iter()
        .filter(|(outcome, _)| !expected.contains(outcome))
        .map(|(_, c)| c)
        .max()
        .unwrap_or(0) as i64;
    let min_gap = min_correct - max_incorrect;
    InstanceOutcome {
        // "Instances were deemed unsuccessful if any incorrect output
        // possessed more counts than any one of the correct outputs."
        success: max_incorrect <= min_correct && counts.total_shots() > 0,
        min_gap,
    }
}

/// Aggregate statistics for one ensemble of instances (one plotted
/// point in the paper's figures).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnsembleStats {
    /// Number of instances aggregated.
    pub instances: usize,
    /// Successful instances.
    pub successes: usize,
    /// Success rate in percent (the paper's vertical axis).
    pub success_rate_pct: f64,
    /// Standard deviation of the per-instance minimum count gaps.
    pub gap_sigma: f64,
    /// Mean minimum gap.
    pub gap_mean: f64,
    /// Percent of successful instances within one σ of failure
    /// (rendered as the *lower* error bar).
    pub lower_bar_pct: f64,
    /// Percent of failed instances within one σ of success (the
    /// *upper* error bar).
    pub upper_bar_pct: f64,
    /// Lower bound of the 95% Wilson score interval on the success
    /// rate, in percent. Unlike the paper's σ-proximity bars (which
    /// describe gap *margins*), this is a sampling-uncertainty
    /// interval on the plotted proportion itself — well-behaved at
    /// 0%/100%, where the figures saturate. Zero for an empty
    /// ensemble.
    pub wilson_low_pct: f64,
    /// Upper bound of the 95% Wilson interval, in percent.
    pub wilson_high_pct: f64,
}

impl EnsembleStats {
    /// Aggregates instance outcomes.
    pub fn from_outcomes(outcomes: &[InstanceOutcome]) -> Self {
        if outcomes.is_empty() {
            return Self::default();
        }
        let n = outcomes.len();
        let successes = outcomes.iter().filter(|o| o.success).count();
        let gaps: Welford = outcomes.iter().map(|o| o.min_gap as f64).collect();
        let sigma = gaps.stddev_sample();
        let near_fail = outcomes
            .iter()
            .filter(|o| o.success && (o.min_gap as f64) < sigma)
            .count();
        let near_success = outcomes
            .iter()
            .filter(|o| !o.success && (o.min_gap as f64) > -sigma)
            .count();
        let (wilson_low, wilson_high) = wilson_interval(successes as u64, n as u64, WILSON_Z95);
        Self {
            instances: n,
            successes,
            success_rate_pct: 100.0 * successes as f64 / n as f64,
            gap_sigma: sigma,
            gap_mean: gaps.mean(),
            lower_bar_pct: 100.0 * near_fail as f64 / n as f64,
            upper_bar_pct: 100.0 * near_success as f64 / n as f64,
            wilson_low_pct: 100.0 * wilson_low,
            wilson_high_pct: 100.0 * wilson_high,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts_from(pairs: &[(usize, u64)]) -> Counts {
        pairs.iter().copied().collect()
    }

    #[test]
    fn clear_success() {
        let counts = counts_from(&[(3, 1800), (9, 200), (4, 48)]);
        let out = evaluate_instance(&counts, &[3]);
        assert!(out.success);
        assert_eq!(out.min_gap, 1600);
    }

    #[test]
    fn clear_failure() {
        let counts = counts_from(&[(3, 100), (9, 1900)]);
        let out = evaluate_instance(&counts, &[3]);
        assert!(!out.success);
        assert_eq!(out.min_gap, -1800);
    }

    #[test]
    fn multiple_expected_all_must_dominate() {
        // One of the two correct outputs has fewer counts than the best
        // incorrect output -> fail, per the paper's criterion.
        let counts = counts_from(&[(1, 1000), (2, 100), (7, 500)]);
        let out = evaluate_instance(&counts, &[1, 2]);
        assert!(!out.success);
        assert_eq!(out.min_gap, 100 - 500);
        // Both correct above all incorrect -> success.
        let counts = counts_from(&[(1, 1000), (2, 600), (7, 500)]);
        let out = evaluate_instance(&counts, &[1, 2]);
        assert!(out.success);
        assert_eq!(out.min_gap, 100);
    }

    #[test]
    fn unobserved_expected_output_fails_when_noise_present() {
        let counts = counts_from(&[(5, 100)]);
        let out = evaluate_instance(&counts, &[3]);
        assert!(!out.success);
        assert_eq!(out.min_gap, -100);
    }

    #[test]
    fn tie_counts_as_success() {
        // "More counts than" is strict: a tie is not a failure.
        let counts = counts_from(&[(3, 500), (9, 500)]);
        let out = evaluate_instance(&counts, &[3]);
        assert!(out.success);
        assert_eq!(out.min_gap, 0);
    }

    #[test]
    fn no_incorrect_outputs_at_all() {
        let counts = counts_from(&[(3, 1024), (4, 1024)]);
        let out = evaluate_instance(&counts, &[3, 4]);
        assert!(out.success);
        assert_eq!(out.min_gap, 1024);
    }

    #[test]
    fn empty_counts_is_failure() {
        let out = evaluate_instance(&Counts::new(), &[3]);
        assert!(!out.success);
    }

    #[test]
    fn ensemble_success_rate() {
        let outcomes: Vec<InstanceOutcome> = (0..10)
            .map(|i| InstanceOutcome {
                success: i < 7,
                min_gap: if i < 7 { 100 } else { -50 },
            })
            .collect();
        let stats = EnsembleStats::from_outcomes(&outcomes);
        assert_eq!(stats.instances, 10);
        assert_eq!(stats.successes, 7);
        assert!((stats.success_rate_pct - 70.0).abs() < 1e-12);
        // The Wilson interval brackets the estimate and stays in
        // [0, 100] — at n=10 it is wide.
        assert!(stats.wilson_low_pct < 70.0 && 70.0 < stats.wilson_high_pct);
        assert!(stats.wilson_low_pct > 34.0 && stats.wilson_low_pct < 45.0);
        assert!(stats.wilson_high_pct > 85.0 && stats.wilson_high_pct < 95.0);
    }

    #[test]
    fn wilson_bounds_are_informative_at_saturation() {
        // 20/20 successes: the σ-proximity bars vanish, but the Wilson
        // interval still reports sampling uncertainty below 100%.
        let outcomes = vec![
            InstanceOutcome {
                success: true,
                min_gap: 100
            };
            20
        ];
        let stats = EnsembleStats::from_outcomes(&outcomes);
        assert_eq!(stats.success_rate_pct, 100.0);
        assert_eq!(stats.wilson_high_pct, 100.0);
        assert!(stats.wilson_low_pct > 80.0 && stats.wilson_low_pct < 100.0);
    }

    #[test]
    fn error_bars_count_near_threshold_instances() {
        // Gaps: successes at 5 and 300, failure at −5. σ of {5, 300, −5}
        // ≈ 172: the success at 5 is within σ of failing (lower bar),
        // the failure at −5 is within σ of succeeding (upper bar).
        let outcomes = [
            InstanceOutcome {
                success: true,
                min_gap: 5,
            },
            InstanceOutcome {
                success: true,
                min_gap: 300,
            },
            InstanceOutcome {
                success: false,
                min_gap: -5,
            },
        ];
        let stats = EnsembleStats::from_outcomes(&outcomes);
        assert!(stats.gap_sigma > 100.0);
        assert!((stats.lower_bar_pct - 100.0 / 3.0).abs() < 1e-9);
        assert!((stats.upper_bar_pct - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_comfortable_successes_have_no_bars() {
        let outcomes = vec![
            InstanceOutcome {
                success: true,
                min_gap: 2000
            };
            20
        ];
        let stats = EnsembleStats::from_outcomes(&outcomes);
        assert_eq!(stats.success_rate_pct, 100.0);
        assert_eq!(stats.gap_sigma, 0.0);
        assert_eq!(stats.lower_bar_pct, 0.0);
        assert_eq!(stats.upper_bar_pct, 0.0);
    }

    #[test]
    fn empty_ensemble_is_default() {
        assert_eq!(EnsembleStats::from_outcomes(&[]), EnsembleStats::default());
    }
}
