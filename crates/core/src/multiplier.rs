//! Quantum Fourier Multiplication (paper Fig. 3).
//!
//! The weighted-sum construction of Ruiz-Pérez: both multiplicands are
//! preserved and a zero-initialized product register accumulates
//! `x · y`. For each multiplicand bit `x_i` (1-based), a controlled QFA
//! adds `y · 2^{i−1}` into the product — realized by running the cQFA on
//! the register *slice* `z_i … z_{i+m}` (the shift) under control of
//! `x_i`.
//!
//! Register sizes: `x`: n qubits, `y`: m qubits, `z`: n + m qubits —
//! "at least as large as the combined sizes of the two multiplicand
//! registers" per the paper, so no overflow is possible. Each cQFA's
//! controlled transform acts on an `(m+1)`-qubit slice, which is where
//! the paper's QFM depth labels live (`full` = cap `m`, labelled
//! `n − 1` in its Table I).

use crate::adder::cqfa;
use crate::depth::AqftDepth;
use qfab_circuit::{Circuit, Layout, Register};

/// A built QFM circuit with its register layout.
#[derive(Clone, Debug)]
pub struct QfmCircuit {
    /// The full circuit (n controlled QFAs).
    pub circuit: Circuit,
    /// First multiplicand (n qubits, preserved).
    pub x: Register,
    /// Second multiplicand (m qubits, preserved).
    pub y: Register,
    /// Product register (n+m qubits, must start at `|0…0>`).
    pub z: Register,
}

/// Builds the QFM: `|x>|y>|0> → |x>|y>|x·y>` with `n`- and `m`-qubit
/// multiplicands, at AQFT depth `depth` (applied inside every cQFA).
pub fn qfm(n: u32, m: u32, depth: AqftDepth) -> QfmCircuit {
    assert!(n >= 1 && m >= 1, "registers must be non-empty");
    let mut layout = Layout::new();
    let x = layout.alloc("x", n);
    let y = layout.alloc("y", m);
    let z = layout.alloc("z", n + m);
    let total = layout.num_qubits();

    let mut circuit = Circuit::new(total);
    for i in 1..=n {
        // Slice z_i .. z_{i+m} (1-based), m+1 qubits: adding y (m bits)
        // shifted by i−1 cannot overflow an (m+1)-bit window whose own
        // higher carries land in later slices... the window receives
        // y + previous-partial-sum bits and carries out through its top
        // qubit, which is the next slice's territory.
        let slice = Register::new(
            format!("z[{}..{}]", i - 1, i + m - 1),
            z.qubit(i - 1),
            m + 1,
        );
        circuit.extend(&cqfa(total, x.qubit(i - 1), &y, &slice, depth));
    }
    QfmCircuit { circuit, x, y, z }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_sim::StateVector;

    const TOL: f64 = 1e-9;

    fn run_mul(built: &QfmCircuit, xv: usize, yv: usize) -> usize {
        let total = built.x.len() + built.y.len() + built.z.len();
        let index = built.y.embed(yv, built.x.embed(xv, 0));
        let mut s = StateVector::basis_state(total, index);
        s.apply_circuit(&built.circuit);
        let probs = s.probabilities();
        let (best, p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!((p - 1.0).abs() < TOL, "output not deterministic: p={p}");
        assert_eq!(built.x.extract(best), xv, "x register must be preserved");
        assert_eq!(built.y.extract(best), yv, "y register must be preserved");
        built.z.extract(best)
    }

    #[test]
    fn exhaustive_3x3_multiplication() {
        let built = qfm(3, 3, AqftDepth::Full);
        for xv in 0..8 {
            for yv in 0..8 {
                assert_eq!(run_mul(&built, xv, yv), xv * yv, "{xv}·{yv}");
            }
        }
    }

    #[test]
    fn asymmetric_register_sizes() {
        let built = qfm(2, 4, AqftDepth::Full);
        for xv in 0..4 {
            for yv in [0usize, 1, 7, 15] {
                assert_eq!(run_mul(&built, xv, yv), xv * yv);
            }
        }
        let built = qfm(4, 2, AqftDepth::Full);
        for xv in [0usize, 5, 9, 15] {
            for yv in 0..4 {
                assert_eq!(run_mul(&built, xv, yv), xv * yv);
            }
        }
    }

    #[test]
    fn paper_geometry_4x4_spot_checks() {
        // The paper's n = 4 configuration (16 qubits total) — spot
        // checks including the maximal product 15·15 = 225.
        let built = qfm(4, 4, AqftDepth::Full);
        for (xv, yv) in [(0, 0), (1, 1), (3, 5), (7, 9), (15, 15), (12, 13)] {
            assert_eq!(run_mul(&built, xv, yv), xv * yv, "{xv}·{yv}");
        }
    }

    #[test]
    fn multiply_by_zero_gives_zero() {
        let built = qfm(3, 3, AqftDepth::Limited(1));
        // x = 0 disables every cQFA: exact at any depth.
        assert_eq!(run_mul(&built, 0, 7), 0);
    }

    #[test]
    fn superposed_multiplicand_computes_all_products() {
        // x in (|2> + |3>)/√2, y = |3>: mix of |2,3,6> and |3,3,9>.
        let built = qfm(3, 3, AqftDepth::Full);
        let amp = qfab_math::complex::c64(std::f64::consts::FRAC_1_SQRT_2, 0.0);
        let e2 = built.y.embed(3, built.x.embed(2, 0));
        let e3 = built.y.embed(3, built.x.embed(3, 0));
        let mut s = StateVector::from_sparse(12, &[(e2, amp), (e3, amp)]);
        s.apply_circuit(&built.circuit);
        let o2 = built.z.embed(6, built.y.embed(3, built.x.embed(2, 0)));
        let o3 = built.z.embed(9, built.y.embed(3, built.x.embed(3, 0)));
        assert!((s.probability(o2) - 0.5).abs() < TOL);
        assert!((s.probability(o3) - 0.5).abs() < TOL);
    }

    #[test]
    fn gate_inventory_matches_paper_model() {
        // n = m = 4: n cQFAs, each with a 5-qubit controlled transform:
        // per cQFA, 2 × 5 cH + (2 × rot(d) + 14) cCP.
        for (depth, rot) in [
            (AqftDepth::Limited(1), 4usize),
            (AqftDepth::Limited(2), 7),
            (AqftDepth::Full, 10),
        ] {
            let built = qfm(4, 4, depth);
            let counts = built.circuit.counts();
            assert_eq!(counts.named("ch"), 4 * 10, "cH at {depth}");
            assert_eq!(counts.named("ccp"), 4 * (2 * rot + 14), "cCP at {depth}");
        }
    }

    #[test]
    fn shallow_depth_multiplication_leaks_probability() {
        // Like the adder, the depth-1 QFM keeps the exact product as the
        // argmax on basis inputs but leaks probability off it.
        let built = qfm(3, 3, AqftDepth::Limited(1));
        let mut max_leak = 0.0f64;
        for xv in 0..8 {
            for yv in 0..8 {
                let index = built.y.embed(yv, built.x.embed(xv, 0));
                let mut s = StateVector::basis_state(12, index);
                s.apply_circuit(&built.circuit);
                let exact = built
                    .z
                    .embed(xv * yv, built.y.embed(yv, built.x.embed(xv, 0)));
                max_leak = max_leak.max(1.0 - s.probability(exact));
            }
        }
        assert!(
            max_leak > 1e-3,
            "depth 1 QFM should leak probability somewhere, max leak {max_leak}"
        );
    }
}
