//! The Quantum Fourier Transform and its approximation.
//!
//! Circuits follow the paper's Fig. 1 exactly: qubits are processed from
//! most significant to least; each receives a Hadamard followed by up to
//! `d` controlled rotations `R_l = CP(2π/2^l)` controlled by the next
//! lower qubits. **No terminal SWAP network is appended** — the output
//! is in the standard bit-reversed Fourier-basis convention, which is
//! what the Draper adder construction in [`crate::adder`] expects:
//! after this transform, register qubit `t` (1-based) carries the phase
//! `2π·(y mod 2^t)/2^t` on its `|1>` component.

use crate::depth::AqftDepth;
use qfab_circuit::{Circuit, Register};
use std::f64::consts::PI;

/// The rotation angle of the paper's `R_l` gate: `2π / 2^l`.
pub fn rotation_angle(l: u32) -> f64 {
    2.0 * PI / (1u64 << l) as f64
}

/// Builds the (A)QFT over `register` inside a circuit of `num_qubits`
/// total qubits.
pub fn aqft_on(num_qubits: u32, register: &Register, depth: AqftDepth) -> Circuit {
    let m = register.len();
    let cap = depth.cap(m);
    let mut c = Circuit::with_capacity(num_qubits, m as usize + depth.rotation_count(m));
    // Paper Fig. 1: start with the most significant qubit y_m.
    for t in (1..=m).rev() {
        c.h(register.qubit(t - 1));
        // Rotations R_2 … R_{min(t, cap+1)}, controlled by the qubit
        // l−1 places below the target.
        for l in 2..=t.min(cap + 1) {
            c.cphase(
                rotation_angle(l),
                register.qubit(t - l),
                register.qubit(t - 1),
            );
        }
    }
    c
}

/// The (A)QFT over a standalone `m`-qubit register.
pub fn aqft(m: u32, depth: AqftDepth) -> Circuit {
    aqft_on(m, &Register::new("y", 0, m), depth)
}

/// The inverse (A)QFT over `register`.
pub fn aqft_inverse_on(num_qubits: u32, register: &Register, depth: AqftDepth) -> Circuit {
    aqft_on(num_qubits, register, depth).inverse()
}

/// The inverse (A)QFT over a standalone `m`-qubit register.
pub fn aqft_inverse(m: u32, depth: AqftDepth) -> Circuit {
    aqft(m, depth).inverse()
}

/// The (A)QFT with a terminal SWAP network, producing the
/// natural-order (non-bit-reversed) Fourier coefficients:
/// amplitude of `|k>` is `e^{2πi·y·k/2^m}/√2^m`.
///
/// The arithmetic circuits never need this (the Draper adder works in
/// the bit-reversed convention and saves `⌊m/2⌋` SWAPs ≙ `3⌊m/2⌋` CX),
/// but phase-estimation-style callers do.
pub fn aqft_natural_order(m: u32, depth: AqftDepth) -> Circuit {
    let mut c = aqft(m, depth);
    for q in 0..m / 2 {
        c.swap(q, m - 1 - q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_math::approx::approx_eq_slice;
    use qfab_math::bits::dim;
    use qfab_math::complex::Complex64;
    use qfab_sim::StateVector;

    const TOL: f64 = 1e-10;

    /// The mathematical QFT in the paper's bit-reversed circuit
    /// convention: qubit t (1-based) carries phase 2π (y mod 2^t)/2^t.
    /// Equivalently, amplitude of output index k is
    /// (1/√N)·e^{2πi·y·rev(k)/N} where rev is an m-bit reversal.
    fn reference_qft_state(m: u32, y: usize) -> Vec<Complex64> {
        let n = dim(m);
        let norm = 1.0 / (n as f64).sqrt();
        (0..n)
            .map(|k| {
                let krev = qfab_math::bits::reverse_bits(k, m);
                Complex64::cis(2.0 * PI * (y as f64) * (krev as f64) / n as f64).scale(norm)
            })
            .collect()
    }

    #[test]
    fn full_qft_matches_reference_for_every_basis_state() {
        for m in 1..=5u32 {
            let circuit = aqft(m, AqftDepth::Full);
            for y in 0..dim(m) {
                let mut s = StateVector::basis_state(m, y);
                s.apply_circuit(&circuit);
                let expect = reference_qft_state(m, y);
                assert!(
                    approx_eq_slice(s.amplitudes(), &expect, TOL),
                    "QFT({m}) wrong on |{y}>"
                );
            }
        }
    }

    #[test]
    fn qft_gate_budget_matches_paper_formula() {
        // Full QFT on m qubits: m Hadamards + m(m−1)/2 rotations.
        for m in 1..=9u32 {
            let c = aqft(m, AqftDepth::Full);
            let counts = c.counts();
            assert_eq!(counts.named("h"), m as usize);
            assert_eq!(counts.named("cp"), (m as usize * (m as usize - 1)) / 2);
        }
    }

    #[test]
    fn aqft_rotation_counts() {
        for m in 2..=9u32 {
            for d in 1..m {
                let c = aqft(m, AqftDepth::Limited(d));
                assert_eq!(
                    c.counts().named("cp"),
                    AqftDepth::Limited(d).rotation_count(m),
                    "m={m}, d={d}"
                );
            }
        }
    }

    #[test]
    fn per_qubit_rotation_cap_is_respected() {
        let m = 8;
        let d = 3;
        let c = aqft(m, AqftDepth::Limited(d));
        let mut rot_per_target = vec![0u32; m as usize];
        for g in c.gates() {
            if let qfab_circuit::Gate::Cphase { target, .. } = g {
                rot_per_target[*target as usize] += 1;
            }
        }
        for (q, &r) in rot_per_target.iter().enumerate() {
            assert!(r <= d, "target qubit {q} has {r} rotations, cap {d}");
            // Qubit q (0-based) can host at most q rotations.
            assert_eq!(r, d.min(q as u32));
        }
    }

    #[test]
    fn inverse_undoes_qft() {
        let m = 6;
        for depth in [AqftDepth::Full, AqftDepth::Limited(2)] {
            let f = aqft(m, depth);
            let b = aqft_inverse(m, depth);
            let mut s = StateVector::basis_state(m, 45);
            s.apply_circuit(&f);
            s.apply_circuit(&b);
            assert!((s.probability(45) - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn aqft_approaches_qft_as_depth_grows() {
        // Fidelity of AQFT output with exact QFT output increases in d.
        let m = 7;
        let y = 93usize;
        let exact = reference_qft_state(m, y);
        let exact_sv = StateVector::from_amplitudes(m, exact);
        let mut last = 0.0;
        for d in 1..m {
            let mut s = StateVector::basis_state(m, y);
            s.apply_circuit(&aqft(m, AqftDepth::Limited(d)));
            let f = s.fidelity(&exact_sv);
            assert!(
                f >= last - 1e-9,
                "fidelity not monotone at d={d}: {f} < {last}"
            );
            last = f;
        }
        assert!((last - 1.0).abs() < TOL, "d=m−1 must be exact, got {last}");
    }

    #[test]
    fn aqft_depth1_is_hadamards_only() {
        let c = aqft(5, AqftDepth::Limited(1));
        // d = 1 in the per-qubit-cap convention keeps R_2 on each qubit
        // except the lowest — 4 rotations on 5 qubits.
        assert_eq!(c.counts().named("cp"), 4);
        assert_eq!(c.counts().named("h"), 5);
    }

    #[test]
    fn aqft_on_subregister_leaves_rest_alone() {
        let reg = Register::new("y", 2, 3);
        let c = aqft_on(6, &reg, AqftDepth::Full);
        for g in c.gates() {
            for &q in g.qubits().as_slice() {
                assert!((2..5).contains(&q), "gate {g} leaves the register");
            }
        }
        assert_eq!(c.num_qubits(), 6);
    }

    #[test]
    fn rotation_angle_values() {
        assert!((rotation_angle(1) - PI).abs() < 1e-15);
        assert!((rotation_angle(2) - PI / 2.0).abs() < 1e-15);
        assert!((rotation_angle(3) - PI / 4.0).abs() < 1e-15);
    }

    #[test]
    fn natural_order_qft_matches_unreversed_dft() {
        // With the terminal swaps, amplitude of |k> is e^{2πi yk/N}/√N.
        for m in 2..=5u32 {
            let circuit = aqft_natural_order(m, AqftDepth::Full);
            let n = dim(m);
            for y in [1usize, n / 2, n - 1] {
                let mut s = StateVector::basis_state(m, y);
                s.apply_circuit(&circuit);
                let norm = 1.0 / (n as f64).sqrt();
                let expect: Vec<Complex64> = (0..n)
                    .map(|k| {
                        Complex64::cis(2.0 * PI * (y as f64) * (k as f64) / n as f64).scale(norm)
                    })
                    .collect();
                assert!(
                    approx_eq_slice(s.amplitudes(), &expect, TOL),
                    "natural-order QFT({m}) wrong on |{y}>"
                );
            }
        }
    }

    #[test]
    fn qft_of_uniform_superposition_is_basis_state() {
        // QFT maps the uniform superposition (y-sum) back to |0…0>:
        // actually QFT|+…+> = |0> since |+…+> = QFT|0> and QFT·QFT =
        // bit-reversal·parity — use inverse for the clean statement:
        // QFT⁻¹ applied to |+…+> gives |0>.
        let m = 4;
        let mut s = StateVector::zero_state(m);
        let mut h_all = Circuit::new(m);
        for q in 0..m {
            h_all.h(q);
        }
        s.apply_circuit(&h_all);
        s.apply_circuit(&aqft_inverse(m, AqftDepth::Full));
        assert!((s.probability(0) - 1.0).abs() < TOL);
    }
}
