//! QFT applications beyond arithmetic: phase estimation and
//! comparison.
//!
//! The paper frames the QFT as "a phase-estimation algorithm" and the
//! arithmetic as groundwork for algorithms built on it. This module
//! closes that loop with two canonical consumers:
//!
//! * [`qpe_phase`] — textbook quantum phase estimation of a
//!   single-qubit phase unitary `P(2πφ)`, reading out an `m`-bit
//!   estimate of `φ` through the inverse (A)QFT. Running it at reduced
//!   AQFT depth exposes exactly the approximation trade-off the paper
//!   studies for arithmetic.
//! * [`comparator`] — `|x>|y>|0> → |x>|y>|x > y>`: compares two
//!   registers by computing the sign of `y − x` with the Fourier
//!   subtractor, copying it out, and uncomputing.

use crate::adder::qfa_add_step;
use crate::depth::AqftDepth;
use crate::qft::aqft_on;
use qfab_circuit::{Circuit, Layout, Register};
use std::f64::consts::PI;

/// A built phase-estimation circuit.
#[derive(Clone, Debug)]
pub struct QpeCircuit {
    /// The circuit (includes eigenstate preparation).
    pub circuit: Circuit,
    /// The counting register; measuring it yields `round(φ·2^m) mod 2^m`.
    pub counting: Register,
    /// The single eigenstate qubit (prepared in `|1>`).
    pub eigenstate: Register,
}

/// Builds QPE for the unitary `U = P(2πφ)` acting on one qubit, with an
/// `m`-qubit counting register and the inverse (A)QFT at `depth`.
pub fn qpe_phase(m: u32, phi: f64, depth: AqftDepth) -> QpeCircuit {
    assert!(m >= 1, "need at least one counting qubit");
    let mut layout = Layout::new();
    let counting = layout.alloc("t", m);
    let eigenstate = layout.alloc("u", 1);
    let total = layout.num_qubits();

    let mut circuit = Circuit::new(total);
    // Eigenstate |1> of P(θ) with eigenvalue e^{iθ}.
    circuit.x(eigenstate.qubit(0));
    for q in 0..m {
        circuit.h(counting.qubit(q));
    }
    // Controlled U^{2^q}: CP(2πφ·2^q).
    for q in 0..m {
        let theta = 2.0 * PI * phi * (1u64 << q) as f64;
        circuit.cphase(theta, counting.qubit(q), eigenstate.qubit(0));
    }
    // The counting register now holds the bit-reversed Fourier encoding
    // of y = φ·2^m; reverse, then the inverse (A)QFT maps it to |y>.
    for q in 0..m / 2 {
        circuit.swap(counting.qubit(q), counting.qubit(m - 1 - q));
    }
    circuit.extend(&aqft_on(total, &counting, depth).inverse());
    QpeCircuit {
        circuit,
        counting,
        eigenstate,
    }
}

/// A built comparator circuit.
#[derive(Clone, Debug)]
pub struct ComparatorCircuit {
    /// The circuit.
    pub circuit: Circuit,
    /// First operand (n qubits, preserved).
    pub x: Register,
    /// Second operand (n qubits, preserved).
    pub y: Register,
    /// Output flag: flipped iff `x > y`.
    pub flag: Register,
}

/// Builds `|x>|y>|f> → |x>|y>|f ⊕ (x > y)>` for `n`-bit unsigned
/// operands, using an `(n+1)`-qubit work extension of `y` so the sign
/// of `y − x` is a clean borrow bit. The subtraction is uncomputed, so
/// `x` and `y` come back unchanged.
pub fn comparator(n: u32, depth: AqftDepth) -> ComparatorCircuit {
    assert!(n >= 1, "operands must be non-empty");
    let mut layout = Layout::new();
    let x = layout.alloc("x", n);
    // y plus one headroom/sign qubit (must start |0>, comes back |0>).
    let y_ext = layout.alloc("y", n + 1);
    let flag = layout.alloc("flag", 1);
    let total = layout.num_qubits();

    // y − x in (n+1) bits: top bit set iff y < x … i.e. x > y.
    let mut subtract = Circuit::new(total);
    subtract.extend(&aqft_on(total, &y_ext, depth));
    subtract.extend(&qfa_add_step(total, &x, &y_ext, None));
    subtract.extend(&aqft_on(total, &y_ext, depth).inverse());
    let subtract = subtract.inverse(); // adder reversed = subtractor

    let mut circuit = Circuit::new(total);
    circuit.extend(&subtract);
    circuit.cx(y_ext.qubit(n), flag.qubit(0));
    circuit.extend(&subtract.inverse());
    ComparatorCircuit {
        circuit,
        x,
        y: Register::new("y_low", y_ext.start(), n),
        flag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_sim::StateVector;

    #[test]
    fn qpe_recovers_dyadic_phases_exactly() {
        let m = 4;
        for y in 0..16usize {
            let phi = y as f64 / 16.0;
            let built = qpe_phase(m, phi, AqftDepth::Full);
            let mut s = StateVector::zero_state(m + 1);
            s.apply_circuit(&built.circuit);
            let expect = built.eigenstate.embed(1, built.counting.embed(y, 0));
            assert!(
                (s.probability(expect) - 1.0).abs() < 1e-8,
                "QPE failed for φ = {y}/16: P = {}",
                s.probability(expect)
            );
        }
    }

    #[test]
    fn qpe_non_dyadic_phase_peaks_at_nearest_estimate() {
        let m = 5;
        let phi = 0.3; // ·32 = 9.6 → best estimates 10 (and 9)
        let built = qpe_phase(m, phi, AqftDepth::Full);
        let mut s = StateVector::zero_state(m + 1);
        s.apply_circuit(&built.circuit);
        // Marginalize over the eigenstate qubit (it stays |1>).
        let p10 = s.probability(built.eigenstate.embed(1, built.counting.embed(10, 0)));
        assert!(p10 > 0.4, "nearest estimate should dominate: {p10}");
        let mut total = p10;
        total += s.probability(built.eigenstate.embed(1, built.counting.embed(9, 0)));
        assert!(total > 0.6, "9/10 together should carry most mass: {total}");
    }

    #[test]
    fn qpe_at_shallow_depth_still_estimates_but_blurs() {
        let m = 5;
        let y = 11usize;
        let phi = y as f64 / 32.0;
        let full = qpe_phase(m, phi, AqftDepth::Full);
        let shallow = qpe_phase(m, phi, AqftDepth::Limited(2));
        let mut sf = StateVector::zero_state(m + 1);
        sf.apply_circuit(&full.circuit);
        let mut ss = StateVector::zero_state(m + 1);
        ss.apply_circuit(&shallow.circuit);
        let exact_idx = full.eigenstate.embed(1, full.counting.embed(y, 0));
        let pf = sf.probability(exact_idx);
        let ps = ss.probability(exact_idx);
        assert!(
            (pf - 1.0).abs() < 1e-8,
            "full QPE must be exact on dyadic φ"
        );
        assert!(ps < pf, "approximation must blur the estimate");
        // But the AQFT at depth 2 keeps the argmax.
        let probs = ss.probabilities();
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, exact_idx, "shallow QPE argmax moved");
    }

    #[test]
    fn comparator_exhaustive_3bit() {
        let built = comparator(3, AqftDepth::Full);
        let total = 3 + 4 + 1;
        for xv in 0..8usize {
            for yv in 0..8usize {
                let input = built.y.embed(yv, built.x.embed(xv, 0));
                let mut s = StateVector::basis_state(total, input);
                s.apply_circuit(&built.circuit);
                let expect_flag = usize::from(xv > yv);
                let expect = built.flag.embed(expect_flag, input);
                assert!(
                    (s.probability(expect) - 1.0).abs() < 1e-7,
                    "compare({xv}, {yv}) wrong"
                );
            }
        }
    }

    #[test]
    fn comparator_preserves_operands_and_work_qubit() {
        let built = comparator(2, AqftDepth::Full);
        let input = built.y.embed(1, built.x.embed(3, 0));
        let mut s = StateVector::basis_state(6, input);
        s.apply_circuit(&built.circuit);
        // Output: same x, y; flag 1 (3 > 1); headroom qubit back to 0.
        let out = built.flag.embed(1, input);
        assert!((s.probability(out) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn comparator_on_superposed_inputs() {
        // x = |2>, y in (|1> + |3>)/√2: flag entangles with the branch.
        let built = comparator(2, AqftDepth::Full);
        let amp = qfab_math::complex::c64(std::f64::consts::FRAC_1_SQRT_2, 0.0);
        let e1 = built.y.embed(1, built.x.embed(2, 0));
        let e3 = built.y.embed(3, built.x.embed(2, 0));
        let mut s = StateVector::from_sparse(6, &[(e1, amp), (e3, amp)]);
        s.apply_circuit(&built.circuit);
        let o1 = built.flag.embed(1, e1); // 2 > 1
        let o3 = built.flag.embed(0, e3); // 2 < 3
        assert!((s.probability(o1) - 0.5).abs() < 1e-7);
        assert!((s.probability(o3) - 0.5).abs() < 1e-7);
    }
}
