//! Stable configuration identity for content-addressed caching.
//!
//! A durable result store keys records by a digest of the *experiment
//! identity* — every input that can change a cell's outcome. Those
//! identities must stay byte-stable across runs, platforms, and
//! refactors, so this module defines the canonical encoding once, next
//! to the types themselves, instead of letting each caller improvise:
//!
//! * [`AqftDepth::identity_tag`] — the depth as a canonical string
//!   (`"full"` or the decimal cap), independent of enum layout.
//! * [`RunConfig::identity_json`] — the *outcome-relevant* subset of a
//!   run configuration. Performance knobs (`checkpoint_budget`,
//!   `inner_parallel`, `batch_shots`) and pure observability knobs
//!   (`shots_ledger`) are deliberately excluded: they change how fast a
//!   cell computes or what gets recorded alongside it, never what it
//!   computes.
//! * [`f64_identity`] — floats canonicalized through their IEEE-754
//!   bits so `0.1 + 0.2`-style representation drift can never alias two
//!   different rates.
//!
//! The digest itself (BLAKE2s, in `qfab-store`) is applied by the
//! caching layer; this module only guarantees the bytes being digested
//! are canonical.

use crate::depth::AqftDepth;
use crate::pipeline::RunConfig;
use qfab_telemetry::Json;

impl AqftDepth {
    /// Canonical identity tag: `"full"` or the decimal rotation cap.
    ///
    /// Matches [`AqftDepth::paper_label`] today, but is a separate
    /// method because the *label* follows the paper's presentation
    /// (free to change) while the *identity tag* is a persistence
    /// format (frozen).
    pub fn identity_tag(self) -> String {
        match self {
            AqftDepth::Full => "full".to_string(),
            AqftDepth::Limited(d) => d.to_string(),
        }
    }

    /// Parses a tag produced by [`AqftDepth::identity_tag`].
    pub fn from_identity_tag(tag: &str) -> Option<Self> {
        if tag == "full" {
            return Some(AqftDepth::Full);
        }
        tag.parse::<u32>()
            .ok()
            .filter(|&d| d >= 1)
            .map(AqftDepth::Limited)
    }
}

impl RunConfig {
    /// The outcome-relevant configuration as canonical JSON:
    /// `{"shots":…,"optimize":…}`.
    pub fn identity_json(&self) -> Json {
        Json::Obj(vec![
            ("shots".to_string(), Json::U64(self.shots)),
            ("optimize".to_string(), Json::Bool(self.optimize)),
        ])
    }
}

/// A float as a canonical JSON identity. Rust's `{}` formatting is
/// shortest-round-trip, so the decimal form alone is injective on
/// finite values — two distinct `f64`s can never produce the same
/// encoding. Non-finite values return `None` (they are never valid
/// sweep parameters).
pub fn f64_identity(v: f64) -> Option<Json> {
    if !v.is_finite() {
        return None;
    }
    // Normalize -0.0 to 0.0 so the two encodings cannot alias.
    let v = if v == 0.0 { 0.0 } else { v };
    Some(Json::F64(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_tags_round_trip() {
        for d in [
            AqftDepth::Full,
            AqftDepth::Limited(1),
            AqftDepth::Limited(4),
            AqftDepth::Limited(31),
        ] {
            assert_eq!(AqftDepth::from_identity_tag(&d.identity_tag()), Some(d));
        }
        assert_eq!(AqftDepth::from_identity_tag("0"), None);
        assert_eq!(AqftDepth::from_identity_tag("fullish"), None);
        assert_eq!(AqftDepth::from_identity_tag(""), None);
    }

    #[test]
    fn depth_tag_matches_paper_label_today() {
        for d in [AqftDepth::Full, AqftDepth::Limited(3)] {
            assert_eq!(d.identity_tag(), d.paper_label());
        }
    }

    #[test]
    fn run_config_identity_excludes_performance_knobs() {
        let a = RunConfig {
            shots: 128,
            checkpoint_budget: 1,
            optimize: false,
            inner_parallel: true,
            batch_shots: 1,
            shots_ledger: true,
        };
        let b = RunConfig {
            shots: 128,
            checkpoint_budget: 1 << 30,
            optimize: false,
            inner_parallel: false,
            batch_shots: 8,
            shots_ledger: false,
        };
        assert_eq!(a.identity_json().encode(), b.identity_json().encode());
        assert_eq!(
            a.identity_json().encode(),
            r#"{"shots":128,"optimize":false}"#
        );
        let c = RunConfig {
            optimize: true,
            ..a
        };
        assert_ne!(a.identity_json().encode(), c.identity_json().encode());
    }

    #[test]
    fn float_identity_is_canonical() {
        assert_eq!(f64_identity(0.003).unwrap().encode(), "0.003");
        assert_eq!(f64_identity(-0.0).unwrap().encode(), "0");
        assert_eq!(f64_identity(0.0).unwrap().encode(), "0");
        assert!(f64_identity(f64::NAN).is_none());
        assert!(f64_identity(f64::INFINITY).is_none());
    }
}
