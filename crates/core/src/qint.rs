//! Quantum integers ("qintegers").
//!
//! The paper defines an order-`j` qinteger as a superposition of `j`
//! unique integer states with nonzero amplitude. Its experiments use
//! *uniform* superpositions over randomly drawn distinct values, which
//! is what [`Qinteger`] models (general amplitude profiles can always be
//! built directly through [`qfab_sim::StateVector::from_sparse`]).

use qfab_math::complex::Complex64;
use qfab_math::frac::{decode_twos_complement, encode_twos_complement};
use qfab_math::rng::Xoshiro256StarStar;

/// A uniform superposition of distinct integer values on a register of
/// `width` qubits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Qinteger {
    width: u32,
    values: Vec<usize>,
}

impl Qinteger {
    /// A classical (order-1) qinteger.
    pub fn classical(width: u32, value: usize) -> Self {
        Self::new(width, vec![value])
    }

    /// A uniform superposition of the given distinct values.
    pub fn new(width: u32, values: Vec<usize>) -> Self {
        assert!((1..=63).contains(&width), "width out of range");
        assert!(!values.is_empty(), "qinteger needs at least one value");
        let limit = 1usize << width;
        for &v in &values {
            assert!(v < limit, "value {v} does not fit in {width} bits");
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            values.len(),
            "qinteger values must be distinct"
        );
        Self { width, values }
    }

    /// A signed qinteger: values encoded in two's complement.
    pub fn from_signed(width: u32, values: &[i64]) -> Self {
        let encoded = values
            .iter()
            .map(|&v| {
                encode_twos_complement(v, width)
                    .unwrap_or_else(|| panic!("{v} does not fit in {width} signed bits"))
            })
            .collect();
        Self::new(width, encoded)
    }

    /// Draws an order-`order` qinteger with distinct values uniform in
    /// `[0, max_exclusive)`.
    pub fn random(
        width: u32,
        order: usize,
        max_exclusive: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> Self {
        assert!(order >= 1, "order must be at least 1");
        assert!(
            max_exclusive >= order,
            "cannot draw {order} distinct values below {max_exclusive}"
        );
        assert!(
            max_exclusive <= 1usize << width,
            "value bound exceeds register capacity"
        );
        let mut values = Vec::with_capacity(order);
        while values.len() < order {
            let v = rng.next_bounded(max_exclusive as u64) as usize;
            if !values.contains(&v) {
                values.push(v);
            }
        }
        Self::new(width, values)
    }

    /// Register width in qubits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The paper's order of superposition.
    pub fn order(&self) -> usize {
        self.values.len()
    }

    /// The superposed values (insertion order).
    pub fn values(&self) -> &[usize] {
        &self.values
    }

    /// The signed interpretations of the values (two's complement).
    pub fn signed_values(&self) -> Vec<i64> {
        self.values
            .iter()
            .map(|&v| decode_twos_complement(v, self.width))
            .collect()
    }

    /// The uniform amplitude each value carries.
    pub fn amplitude(&self) -> Complex64 {
        Complex64::from_real(1.0 / (self.order() as f64).sqrt())
    }

    /// Sparse register-local state entries `(value, amplitude)`.
    pub fn sparse_entries(&self) -> Vec<(usize, Complex64)> {
        let amp = self.amplitude();
        self.values.iter().map(|&v| (v, amp)).collect()
    }
}

/// Tensor product of register-local sparse states into full-circuit
/// sparse entries: `parts[i]` lives on register `i` of `registers`, and
/// the output enumerates every combination.
pub fn product_state(
    registers: &[&qfab_circuit::Register],
    parts: &[&Qinteger],
) -> Vec<(usize, Complex64)> {
    assert_eq!(registers.len(), parts.len(), "register/part count mismatch");
    for (reg, part) in registers.iter().zip(parts) {
        assert_eq!(
            reg.len(),
            part.width(),
            "register width mismatch for {}",
            reg.name()
        );
    }
    let mut acc: Vec<(usize, Complex64)> = vec![(0, Complex64::ONE)];
    for (reg, part) in registers.iter().zip(parts) {
        let mut next = Vec::with_capacity(acc.len() * part.order());
        for &(idx, amp) in &acc {
            for &(v, a) in &part.sparse_entries() {
                next.push((reg.embed(v, idx), amp * a));
            }
        }
        acc = next;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_circuit::Register;

    #[test]
    fn classical_qinteger() {
        let q = Qinteger::classical(4, 9);
        assert_eq!(q.order(), 1);
        assert_eq!(q.values(), &[9]);
        assert!((q.amplitude().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn order_two_amplitudes() {
        let q = Qinteger::new(4, vec![3, 12]);
        assert_eq!(q.order(), 2);
        let amp = q.amplitude();
        assert!((amp.re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert_eq!(q.sparse_entries().len(), 2);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_values_rejected() {
        Qinteger::new(4, vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_rejected() {
        Qinteger::new(3, vec![8]);
    }

    #[test]
    fn signed_roundtrip() {
        let q = Qinteger::from_signed(4, &[-3, 5]);
        assert_eq!(q.values(), &[13, 5]);
        assert_eq!(q.signed_values(), vec![-3, 5]);
    }

    #[test]
    fn random_qintegers_are_distinct_and_bounded() {
        let mut rng = Xoshiro256StarStar::new(9);
        for _ in 0..100 {
            let q = Qinteger::random(8, 2, 128, &mut rng);
            assert_eq!(q.order(), 2);
            assert_ne!(q.values()[0], q.values()[1]);
            assert!(q.values().iter().all(|&v| v < 128));
        }
    }

    #[test]
    fn random_order_one() {
        let mut rng = Xoshiro256StarStar::new(10);
        let q = Qinteger::random(8, 1, 256, &mut rng);
        assert_eq!(q.order(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn random_rejects_impossible_order() {
        let mut rng = Xoshiro256StarStar::new(11);
        let _ = Qinteger::random(2, 5, 4, &mut rng);
    }

    #[test]
    fn product_state_enumerates_combinations() {
        let x_reg = Register::new("x", 0, 3);
        let y_reg = Register::new("y", 3, 4);
        let x = Qinteger::new(3, vec![1, 2]);
        let y = Qinteger::new(4, vec![5]);
        let entries = product_state(&[&x_reg, &y_reg], &[&x, &y]);
        assert_eq!(entries.len(), 2);
        let expect_1 = y_reg.embed(5, x_reg.embed(1, 0));
        let expect_2 = y_reg.embed(5, x_reg.embed(2, 0));
        let indices: Vec<usize> = entries.iter().map(|e| e.0).collect();
        assert!(indices.contains(&expect_1) && indices.contains(&expect_2));
        // Norm is 1.
        let norm: f64 = entries.iter().map(|e| e.1.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn product_state_order_2x2() {
        let x_reg = Register::new("x", 0, 3);
        let y_reg = Register::new("y", 3, 3);
        let x = Qinteger::new(3, vec![0, 7]);
        let y = Qinteger::new(3, vec![1, 6]);
        let entries = product_state(&[&x_reg, &y_reg], &[&x, &y]);
        assert_eq!(entries.len(), 4);
        for (_, amp) in &entries {
            assert!((amp.re - 0.5).abs() < 1e-12);
        }
    }
}
