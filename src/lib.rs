#![warn(missing_docs)]

//! # qfab — noisy approximate quantum Fourier arithmetic
//!
//! A from-scratch Rust reproduction of *"Performance Evaluations of
//! Noisy Approximate Quantum Fourier Arithmetic"* (Basili et al., IPPS
//! 2022): quantum Fourier addition (QFA) and multiplication (QFM) built
//! on the approximate QFT, evaluated under tunable depolarizing noise
//! models on a state-vector simulator — all implemented in this
//! workspace, no quantum SDK required.
//!
//! This umbrella crate re-exports the public API of the sub-crates:
//!
//! * [`math`] — complex numbers, small unitaries, bit utilities,
//!   samplers, deterministic RNG streams ([`qfab_math`]).
//! * [`circuit`] — the gate set and circuit IR ([`qfab_circuit`]).
//! * [`transpile`] — lowering to CX+1q and IBM {Id,X,RZ,SX,CX} bases,
//!   peephole optimization ([`qfab_transpile`]).
//! * [`sim`] — state-vector and density-matrix engines with
//!   checkpointed trajectory replay ([`qfab_sim`]).
//! * [`noise`] — depolarizing/damping channels, noise models,
//!   Monte-Carlo trajectory sampling ([`qfab_noise`]).
//! * [`core`] — the paper's arithmetic (QFT/AQFT, QFA, QFM, constant
//!   and weighted-sum variants) and its evaluation pipeline and metrics
//!   ([`qfab_core`]).
//! * [`experiments`] — the table/figure reproduction harness
//!   ([`qfab_experiments`]).
//! * [`serve`] — the sweep service: durable job queue, worker
//!   sharding, and store federation ([`qfab_serve`]).
//!
//! ## Quickstart
//!
//! ```
//! use qfab::core::{qfa, AqftDepth};
//! use qfab::sim::StateVector;
//!
//! // |x=3>|y=4>  ->  |3>|7>, exactly, with the full QFT.
//! let adder = qfa(3, 4, AqftDepth::Full);
//! let input = adder.y.embed(4, adder.x.embed(3, 0));
//! let mut state = StateVector::basis_state(7, input);
//! state.apply_circuit(&adder.circuit);
//! let output = adder.y.embed(7, adder.x.embed(3, 0));
//! assert!((state.probability(output) - 1.0).abs() < 1e-9);
//! ```
//!
//! See `examples/` for noisy evaluation, weighted sums, AQFT fidelity
//! scans, and modular exponentiation, and the `repro` binary
//! (`cargo run --release -p qfab-experiments --bin repro`) for the
//! paper's tables and figures.

pub use qfab_circuit as circuit;
pub use qfab_core as core;
pub use qfab_experiments as experiments;
pub use qfab_math as math;
pub use qfab_noise as noise;
pub use qfab_serve as serve;
pub use qfab_sim as sim;
pub use qfab_store as store;
pub use qfab_transpile as transpile;
